"""Tests for the fault-injection engine (:mod:`repro.circuits.mutate`).

Covers every mutation operator on a hand-built netlist, determinism of the
seeded draw, the replay path (``apply_mutations`` over a recorded list),
JSON round-trips, and the visibility guarantee of
:func:`inject_visible_faults` — the property the fuzz oracle's ground truth
rests on.
"""

import random

import pytest

from repro.circuits.generators import random_sequential_circuit
from repro.circuits.mutate import (
    MUTATION_KINDS,
    Mutation,
    MutationError,
    apply_mutation,
    apply_mutations,
    inject_visible_faults,
    random_mutation,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import find_mismatch


def tiny_netlist() -> Netlist:
    """a AND (NOT b) -> register -> output, with a spare OR tap."""
    n = Netlist("tiny")
    n.add_input("a")
    n.add_input("b")
    n.add_output("y")
    n.add_net("nb")
    n.add_net("conj")
    n.add_net("spare")
    n.add_net("q")
    n.add_cell("inv_b", "NOT", ["b"], "nb")
    n.add_cell("g_and", "AND", ["a", "nb"], "conj")
    n.add_cell("g_or", "OR", ["a", "b"], "spare")
    n.add_cell("buf_y", "BUF", ["q"], "y")
    n.add_register("r0", "conj", "q", init=0)
    n.validate()
    return n


class TestOperators:
    def test_stuck_at_replaces_gate_with_const(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("stuck_at", "g_and", value=1))
        cell = out.cells["g_and"]
        assert cell.type == "CONST"
        assert cell.params["value"] == 1
        assert cell.output == "conj"
        # the original is untouched
        assert net.cells["g_and"].type == "AND"

    def test_gate_swap_within_arity_class(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("gate_swap", "g_and", arg="XOR"))
        assert out.cells["g_and"].type == "XOR"
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("gate_swap", "g_and", arg="AND"))
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("gate_swap", "g_and", arg="NOT"))

    def test_operand_swap_two_input_gate(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("operand_swap", "g_and"))
        assert out.cells["g_and"].inputs == ("nb", "a")
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("operand_swap", "inv_b"))

    def test_operand_swap_mux_swaps_data_not_select(self):
        n = Netlist("muxed")
        n.add_input("s")
        n.add_input("d0")
        n.add_input("d1")
        n.add_output("y")
        n.add_cell("m", "MUX", ["s", "d1", "d0"], "y")
        n.validate()
        out = apply_mutation(n, Mutation("operand_swap", "m"))
        assert out.cells["m"].inputs == ("s", "d0", "d1")

    def test_insert_inverter_breaks_one_pin(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("insert_inverter", "g_and", pin=1))
        mutated = out.cells["g_and"]
        assert mutated.inputs[0] == "a"
        inv_net = mutated.inputs[1]
        assert inv_net != "nb"
        added = [c for c in out.cells.values()
                 if c.type == "NOT" and c.output == inv_net]
        assert len(added) == 1 and added[0].inputs == ("nb",)
        out.validate()

    def test_remove_inverter_degrades_to_buf(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("remove_inverter", "inv_b"))
        assert out.cells["inv_b"].type == "BUF"
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("remove_inverter", "g_and"))

    def test_rewire_moves_a_pin(self):
        net = tiny_netlist()
        out = apply_mutation(net, Mutation("rewire", "g_and", pin=1, arg="spare"))
        assert out.cells["g_and"].inputs == ("a", "spare")
        out.validate()

    def test_rewire_rejects_combinational_cycle(self):
        # g_and <- spare while g_or <- conj would close conj -> spare -> conj
        net = tiny_netlist()
        step1 = apply_mutation(net, Mutation("rewire", "g_or", pin=0, arg="conj"))
        with pytest.raises(MutationError):
            apply_mutation(step1, Mutation("rewire", "g_and", pin=0, arg="spare"))

    def test_rewire_rejects_self_loop_and_unknown_net(self):
        net = tiny_netlist()
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("rewire", "g_and", pin=0, arg="conj"))
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("rewire", "g_and", pin=0, arg="ghost"))

    def test_unknown_cell_and_kind_are_errors(self):
        net = tiny_netlist()
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("stuck_at", "nope"))
        with pytest.raises(MutationError):
            apply_mutation(net, Mutation("bitrot", "g_and"))


class TestMutationRecord:
    def test_json_round_trip(self):
        for mutation in (
            Mutation("stuck_at", "g", value=1),
            Mutation("gate_swap", "g", arg="NOR"),
            Mutation("rewire", "g", pin=2, arg="net_7"),
        ):
            assert Mutation.from_dict(mutation.to_dict()) == mutation

    def test_describe_covers_every_kind(self):
        for kind in MUTATION_KINDS:
            text = Mutation(kind, "g_and", pin=1, arg="X", value=1).describe()
            assert "g_and" in text

    def test_apply_mutations_replays_in_order(self):
        net = tiny_netlist()
        mutations = [
            Mutation("gate_swap", "g_and", arg="OR"),
            Mutation("remove_inverter", "inv_b"),
        ]
        replayed = apply_mutations(net, mutations)
        assert replayed.cells["g_and"].type == "OR"
        assert replayed.cells["inv_b"].type == "BUF"
        # identical to applying one at a time
        stepped = apply_mutation(apply_mutation(net, mutations[0]), mutations[1])
        assert {c.name: (c.type, c.inputs) for c in replayed.cells.values()} == \
               {c.name: (c.type, c.inputs) for c in stepped.cells.values()}


class TestRandomMutation:
    def test_same_seed_same_draw(self):
        net = random_sequential_circuit(4, 5, 24, seed=7)
        draws_a = [random_mutation(net, random.Random(13)) for _ in range(5)]
        draws_b = [random_mutation(net, random.Random(13)) for _ in range(5)]
        assert draws_a == draws_b
        assert all(m is not None for m in draws_a)

    def test_drawn_mutations_are_applicable(self):
        net = random_sequential_circuit(4, 5, 24, seed=3)
        rng = random.Random(0)
        applied = 0
        for _ in range(32):
            mutation = random_mutation(net, rng)
            assert mutation is not None
            try:
                apply_mutation(net, mutation)
            except MutationError:
                continue  # e.g. a rewire draw that closes a cycle
            applied += 1
        assert applied > 0

    def test_kind_restriction_honoured(self):
        net = tiny_netlist()
        rng = random.Random(1)
        for _ in range(8):
            mutation = random_mutation(net, rng, kinds=("stuck_at",))
            assert mutation.kind == "stuck_at"

    def test_no_candidates_returns_none(self):
        n = Netlist("wires")
        n.add_input("a")
        n.add_output("y")
        n.add_cell("w", "BUF", ["a"], "y")
        n.validate()
        assert random_mutation(n, random.Random(0),
                               kinds=("remove_inverter",)) is None


class TestInjectVisibleFaults:
    def test_faults_are_simulation_visible(self):
        net = random_sequential_circuit(4, 5, 24, seed=11)
        mutant, applied = inject_visible_faults(net, n=2, seed=11)
        assert len(applied) == 2
        assert find_mismatch(net, mutant) is not None

    def test_deterministic_in_seed(self):
        net = random_sequential_circuit(4, 5, 24, seed=5)
        _, applied_a = inject_visible_faults(net, n=2, seed=9)
        _, applied_b = inject_visible_faults(net, n=2, seed=9)
        assert applied_a == applied_b
        _, applied_c = inject_visible_faults(net, n=2, seed=10)
        assert applied_a != applied_c  # different seed, different faults

    def test_replay_of_recorded_faults_matches(self):
        net = random_sequential_circuit(4, 5, 24, seed=2)
        mutant, applied = inject_visible_faults(net, n=2, seed=2)
        replayed = apply_mutations(net, applied)
        assert {c.name: (c.type, c.inputs, tuple(sorted(c.params.items())))
                for c in replayed.cells.values()} == \
               {c.name: (c.type, c.inputs, tuple(sorted(c.params.items())))
                for c in mutant.cells.values()}

    def test_visibility_against_external_reference(self):
        # fuzz retime-fault cells mutate the *retimed* circuit but must be
        # visible against the *original*
        net = random_sequential_circuit(4, 5, 24, seed=4)
        from repro.retiming.apply import apply_forward_retiming
        from repro.retiming.cuts import sized_forward_cut

        cut = sized_forward_cut(net, 2, seed=4)
        retimed = apply_forward_retiming(net, cut)
        mutant, applied = inject_visible_faults(retimed, reference=net,
                                                n=1, seed=4)
        assert applied
        assert find_mismatch(net, mutant) is not None

    def test_unmutatable_netlist_raises(self):
        n = Netlist("wires")
        n.add_input("a")
        n.add_output("y")
        n.add_cell("w", "BUF", ["a"], "y")
        n.validate()
        with pytest.raises(MutationError):
            inject_visible_faults(n, n=1, seed=0, kinds=("remove_inverter",))
