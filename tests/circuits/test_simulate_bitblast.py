"""Tests for cycle simulation, bit-blasting and structural analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.bitblast import bit_name, bitblast, pack_output_bits
from repro.circuits.generators import (
    counter,
    figure2,
    figure2_retimed,
    fractional_multiplier,
    gray_counter,
    random_sequential_circuit,
    shift_register,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import (
    SimulationError,
    Simulator,
    find_mismatch,
    outputs_equal,
    random_input_sequence,
    simulate,
)
from repro.circuits.structural import (
    same_interface,
    state_only_cells,
    structural_signature,
    support_of,
    transitive_fanin_nets,
)


class TestSimulation:
    def test_counter_counts(self):
        c = counter(4)
        trace = simulate(c, [{"en": 1}] * 5 + [{"en": 0}] * 3)
        assert trace.output_sequence("y") == [0, 1, 2, 3, 4, 5, 5, 5]

    def test_counter_wraps(self):
        c = counter(2)
        trace = simulate(c, [{"en": 1}] * 6)
        assert trace.output_sequence("y") == [0, 1, 2, 3, 0, 1]

    def test_shift_register_latency(self):
        s = shift_register(3, width=4)
        seq = [{"din": v} for v in (9, 5, 7, 1, 2, 3)]
        trace = simulate(s, seq)
        assert trace.output_sequence("dout")[:3] == [0, 0, 0]
        assert trace.output_sequence("dout")[3:] == [9, 5, 7]

    def test_gray_counter_sequence(self):
        g = gray_counter(4)
        trace = simulate(g, [{}] * 8)
        ys = trace.output_sequence("y")
        # consecutive Gray codes differ in exactly one bit
        for prev, nxt in zip(ys, ys[1:]):
            assert bin(prev ^ nxt).count("1") == 1

    def test_missing_input_raises(self):
        c = counter(4)
        sim = Simulator(c)
        with pytest.raises(SimulationError):
            sim.step({})

    def test_oversized_input_raises(self):
        c = counter(4)
        sim = Simulator(c)
        with pytest.raises(SimulationError):
            sim.step({"en": 2})

    def test_state_override(self):
        c = counter(4)
        sim = Simulator(c, state={"R": 7})
        assert sim.step({"en": 1})["y"] == 7

    def test_unknown_state_override(self):
        with pytest.raises(SimulationError):
            Simulator(counter(4), state={"nope": 1})

    def test_random_sequence_reproducible(self):
        c = figure2(4)
        assert random_input_sequence(c, 10, seed=3) == random_input_sequence(c, 10, seed=3)
        assert random_input_sequence(c, 10, seed=3) != random_input_sequence(c, 10, seed=4)

    def test_outputs_equal_and_mismatch(self):
        a, b = figure2(3), figure2_retimed(3)
        assert outputs_equal(a, b, cycles=128, seed=2)
        assert find_mismatch(a, b, cycles=128) is None

    def test_mismatch_detected_for_different_circuits(self):
        a = counter(3)
        b = counter(3)
        # corrupt b's initial state
        from repro.circuits.netlist import Register

        reg = b.registers["R"]
        b.registers["R"] = Register(reg.name, reg.input, reg.output, init=1, width=reg.width)
        assert find_mismatch(a, b, cycles=16) == 0


class TestFigure2Behaviour:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_retimed_reference_equivalent(self, n):
        assert outputs_equal(figure2(n), figure2_retimed(n), cycles=200, seed=n)

    def test_counts_only_when_inputs_agree(self):
        c = figure2(4)
        trace = simulate(c, [{"a": 3, "b": 3}] * 4 + [{"a": 1, "b": 2}] * 3)
        ys = trace.output_sequence("y")
        assert ys[:5] == [0, 1, 2, 3, 4]
        assert ys[5:] == [4, 4]


class TestMultiplierBehaviour:
    def test_product_appears_after_load(self):
        m = fractional_multiplier(4)
        seq = [{"x": 3, "load": 1}] + [{"x": 0, "load": 0}] * 3
        trace = simulate(m, seq)
        # cycle 0 loads, cycle 1 multiplies into PIPE, cycle 2 shifts out
        assert trace.output_sequence("p")[2] == (3 * 3) >> 1

    def test_wraps_modulo_width(self):
        m = fractional_multiplier(4)
        seq = [{"x": 13, "load": 1}] + [{"x": 0, "load": 0}] * 3
        trace = simulate(m, seq)
        assert trace.output_sequence("p")[2] == ((13 * 13) & 0xF) >> 1


class TestBitblast:
    @pytest.mark.parametrize("maker,kwargs", [
        (figure2, {"n": 3}),
        (counter, {"n": 5}),
        (fractional_multiplier, {"n": 3}),
        (gray_counter, {"n": 4}),
        (shift_register, {"n_stages": 2, "width": 3}),
    ])
    def test_bitblast_preserves_behaviour(self, maker, kwargs):
        word = maker(**kwargs)
        result = bitblast(word)
        gate = result.netlist
        assert all(net.width == 1 for net in gate.nets.values())
        seq = random_input_sequence(word, 40, seed=11)
        bit_seq = []
        for vec in seq:
            bits = {}
            for name, value in vec.items():
                width = word.width(name)
                if width == 1:
                    bits[name] = value
                else:
                    for i in range(width):
                        bits[bit_name(name, i)] = (value >> i) & 1
            bit_seq.append(bits)
        word_trace = simulate(word, seq)
        gate_trace = simulate(gate, bit_seq)
        for wout, gout in zip(word_trace.outputs, gate_trace.outputs):
            assert pack_output_bits(result, word, gout) == wout

    def test_bitblast_register_count(self):
        word = figure2(6)
        gate = bitblast(word).netlist
        assert gate.num_flipflops() == word.num_flipflops()

    @given(st.integers(0, 2**6 - 1), st.integers(0, 2**6 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bitblast_adder_exhaustive_ish(self, a, b):
        nl = Netlist("add6")
        nl.add_input("a", 6)
        nl.add_input("b", 6)
        nl.add_cell("add", "ADD", ["a", "b"], "s")
        nl.add_register("R", "s", "q", width=6)
        nl.add_cell("buf", "BUF", ["q"], "y")
        nl.add_output("y", 6)
        result = bitblast(nl)
        seq = [{"a": a, "b": b}, {"a": 0, "b": 0}]
        bit_seq = [
            {bit_name(k, i): (v >> i) & 1 for k, v in vec.items() for i in range(6)}
            for vec in seq
        ]
        word_trace = simulate(nl, seq)
        gate_trace = simulate(result.netlist, bit_seq)
        assert pack_output_bits(result, nl, gate_trace.outputs[1])["y"] == \
            word_trace.outputs[1]["y"] == (a + b) % 64


class TestStructural:
    def test_support_and_fanin(self, fig2_small):
        pis, regs = support_of(fig2_small, "m")
        assert pis == {"a", "b"}
        assert regs == {"d0_out", "d1_out"}
        assert "sel" in transitive_fanin_nets(fig2_small, "m")

    def test_state_only_cells(self, fig2_small):
        assert "inc" in state_only_cells(fig2_small)
        assert "cmp" not in state_only_cells(fig2_small)

    def test_structural_signature_stable(self, fig2_small):
        sig1 = structural_signature(fig2_small)
        sig2 = structural_signature(figure2(3))
        assert sig1 == sig2

    def test_same_interface(self, fig2_small, fig2_small_retimed):
        assert same_interface(fig2_small, fig2_small_retimed)
        assert not same_interface(fig2_small, counter(3))


class TestGenerators:
    def test_random_circuit_deterministic(self):
        a = random_sequential_circuit(4, 6, 30, seed=5)
        b = random_sequential_circuit(4, 6, 30, seed=5)
        assert structural_signature(a) == structural_signature(b)
        c = random_sequential_circuit(4, 6, 30, seed=6)
        assert structural_signature(a) != structural_signature(c)

    def test_random_circuit_sizes(self):
        nl = random_sequential_circuit(5, 12, 80, seed=1)
        assert nl.num_flipflops() == 12
        assert nl.num_gates() >= 80  # gates plus output buffers
        assert len(nl.inputs) == 5
        nl.validate()

    def test_random_circuit_has_retimable_cells(self):
        from repro.retiming.apply import forward_retimable_cells

        nl = random_sequential_circuit(4, 8, 40, seed=2)
        assert forward_retimable_cells(nl)

    def test_random_circuit_argument_validation(self):
        with pytest.raises(ValueError):
            random_sequential_circuit(0, 5, 10)

    def test_iwls_suite(self):
        from repro.circuits.generators import IWLS_BENCHMARKS, iwls_circuit, iwls_suite

        assert len(IWLS_BENCHMARKS) == 10
        suite = iwls_suite(scale=0.05, names=["s344", "s526"])
        assert set(suite) == {"s344", "s526"}
        for nl in suite.values():
            nl.validate()
        mult = iwls_circuit("s526", scale=1.0)
        assert "mult" in mult.cells
        with pytest.raises(KeyError):
            iwls_circuit("s_unknown")

    def test_figure2_width_validation(self):
        with pytest.raises(ValueError):
            figure2(0)
        with pytest.raises(ValueError):
            fractional_multiplier(1)
