"""Shared fixtures for the test suite."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.circuits.generators import (
    counter,
    figure2,
    figure2_retimed,
    fractional_multiplier,
    random_sequential_circuit,
    shift_register,
)


@pytest.fixture(scope="session")
def fig2_small():
    """The Figure-2 example at a small width (shared, read-only)."""
    return figure2(3)


@pytest.fixture(scope="session")
def fig2_small_retimed():
    return figure2_retimed(3)


@pytest.fixture(scope="session")
def counter_small():
    return counter(4)


@pytest.fixture(scope="session")
def multiplier_small():
    return fractional_multiplier(3)


@pytest.fixture(scope="session")
def shift_small():
    return shift_register(3, width=2)


@pytest.fixture(scope="session")
def random_small():
    return random_sequential_circuit(3, 5, 24, seed=7)
