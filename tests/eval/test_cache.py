"""Tests for the content-addressed result cache (:mod:`repro.eval.cache`).

The key property is cache-*key determinism*: a cell's digest must be stable
across processes and interpreter hash seeds, insensitive to parameter dict
ordering, and sensitive to everything that could change the measurement —
backend, budgets, circuit content and the code-version salt.  A golden
digest pins the canonicalisation itself.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.circuits.netlist import Netlist
from repro.eval.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    cell_key,
    measurement_from_dict,
    measurement_to_dict,
    netlist_fingerprint,
)
from repro.eval.runner import CellSpec, Measurement, run_cells
from repro.eval.workloads import Workload
from repro.verification.common import VerificationResult
from repro.verification.registry import register_checker, unregister_checker


def _golden_workload(init: int = 0, params=None) -> Workload:
    """A tiny hand-built workload, independent of the circuit generators."""
    original = Netlist("golden")
    original.add_input("d", 1)
    original.add_register("R", "d", "q", init=init, width=1)
    original.add_cell("outbuf", "BUF", ["q"], "y")
    original.add_output("y", 1)
    original.validate()
    retimed = Netlist("golden_retimed")
    retimed.add_input("d", 1)
    retimed.add_cell("outbuf", "BUF", ["d"], "b")
    retimed.add_register("R", "b", "y", init=init, width=1)
    retimed.add_output("y", 1)
    retimed.validate()
    return Workload(
        name="golden",
        original=original,
        cut=["outbuf"],
        retimed=retimed,
        provenance={"scenario": "golden",
                    "params": params or {"n": 1, "mode": "x"}},
    )


#: pinned digest of (_golden_workload(), "match", 10.0, 1000, salt="golden-salt");
#: changes only when the canonicalisation itself changes — bump deliberately.
#: (PR 7 bump: the payload gained the ``aig_opt`` toggle and the NPN
#: rewrite-library version.)
GOLDEN_DIGEST = "d1d396d1768127c30cad587303ecd7a3d445eeafa300288a6f47af82e0d39fe9"


class TestCellKeyDeterminism:
    def test_golden_digest(self):
        key = cell_key(_golden_workload(), "match", 10.0, 1000,
                       salt="golden-salt")
        assert key == GOLDEN_DIGEST

    def test_stable_across_processes_and_hash_seeds(self):
        code = (
            "import sys; "
            f"sys.path.insert(0, {os.path.dirname(__file__)!r}); "
            "from test_cache import _golden_workload; "
            "from repro.eval.cache import cell_key; "
            "print(cell_key(_golden_workload(), 'match', 10.0, 1000, "
            "salt='golden-salt'))"
        )
        src = os.path.dirname(os.path.dirname(repro.__file__))
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=seed)
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True, check=True)
            assert out.stdout.strip() == GOLDEN_DIGEST, f"seed {seed}"

    def test_param_dict_order_is_irrelevant(self):
        a = _golden_workload(params={"n": 1, "mode": "x"})
        b = _golden_workload(params={"mode": "x", "n": 1})
        assert list(a.provenance["params"]) != list(b.provenance["params"])
        assert cell_key(a, "match", 10.0, 1000) == cell_key(b, "match", 10.0, 1000)

    def test_sensitive_to_backend_budget_and_salt(self):
        w = _golden_workload()
        base = cell_key(w, "match", 10.0, 1000)
        assert cell_key(w, "hash", 10.0, 1000) != base
        assert cell_key(w, "match", 20.0, 1000) != base
        assert cell_key(w, "match", 10.0, 2000) != base
        assert cell_key(w, "match", 10.0, 1000, salt="other") != base

    def test_sensitive_to_aig_opt_toggle(self):
        """A rewriting-off measurement must never serve a rewriting-on
        request (and vice versa): the toggle is part of the digest."""
        w = _golden_workload()
        on = cell_key(w, "match", 10.0, 1000, aig_opt=True)
        off = cell_key(w, "match", 10.0, 1000, aig_opt=False)
        assert on != off
        assert on == cell_key(w, "match", 10.0, 1000)  # default is on

    def test_spec_key_carries_the_aig_opt_toggle(self):
        from repro.eval.cache import spec_key

        w = _golden_workload()
        on = spec_key(CellSpec(w, "match", 10.0, 1000, aig_opt=True))
        off = spec_key(CellSpec(w, "match", 10.0, 1000, aig_opt=False))
        assert on != off

    def test_sensitive_to_rewrite_library_version(self, monkeypatch):
        """Regenerating the NPN structure library invalidates old entries."""
        from repro.eval import cache as cache_mod

        w = _golden_workload()
        base = cell_key(w, "match", 10.0, 1000)
        monkeypatch.setattr(cache_mod, "LIBRARY_VERSION", "npn4-v0-test")
        assert cell_key(w, "match", 10.0, 1000) != base

    def test_sensitive_to_circuit_content(self):
        base = cell_key(_golden_workload(init=0), "match", 10.0, 1000)
        assert cell_key(_golden_workload(init=1), "match", 10.0, 1000) != base

    def test_sensitive_to_params_and_scenario(self):
        base = cell_key(_golden_workload(), "match", 10.0, 1000)
        other = _golden_workload(params={"n": 2, "mode": "x"})
        assert cell_key(other, "match", 10.0, 1000) != base

    def test_insensitive_to_measurement_stats_shape(self, tmp_path):
        """Digests key on the *spec*, never on the measured stats.

        The incremental-SAT rework added counters (``solver_calls``,
        ``restarts``, ``learned_kept``, ``learned_deleted``,
        ``vars_encoded``, ``classes_split``) to ``VerificationResult.stats``
        — a payload-shape change, not a semantic one, so no
        ``CACHE_SCHEMA`` bump: pre-rework disk entries (old stats shape)
        must still be served under the same digest, and new-shape entries
        must round-trip unchanged.
        """
        w = _golden_workload()
        key = cell_key(w, "fraig", 10.0, 1000, salt="golden-salt")
        # the digest is computed before any measurement exists, so nothing
        # about the stats payload can reach it
        assert key == cell_key(w, "fraig", 10.0, 1000, salt="golden-salt")

        old = Measurement("w", "fraig", "ok", 1.0,
                          stats={"decisions": 3.0, "sat_calls": 2.0})
        new = Measurement("w", "fraig", "ok", 1.0,
                          stats={"decisions": 3.0, "sat_calls": 2.0,
                                 "solver_calls": 2.0, "restarts": 0.0,
                                 "learned_kept": 5.0, "learned_deleted": 1.0,
                                 "vars_encoded": 40.0, "classes_split": 1.0})
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.store(key, old)
        served = ResultCache(directory=directory).lookup(key)
        assert served == old  # old-shape entry still hits under the new code
        cache.store("other-key", new)
        again = ResultCache(directory=directory).lookup("other-key")
        assert again == new  # new counters survive the disk round-trip

    def test_adhoc_workload_keys_on_circuit_content(self):
        w = _golden_workload()
        w.provenance = None
        key = cell_key(w, "match", 10.0, 1000)
        assert key != cell_key(_golden_workload(), "match", 10.0, 1000)
        # and it is still deterministic
        w2 = _golden_workload()
        w2.provenance = None
        assert cell_key(w2, "match", 10.0, 1000) == key

    def test_netlist_fingerprint_ignores_construction_order(self):
        a = Netlist("x")
        a.add_input("p", 1)
        a.add_input("q", 1)
        a.add_cell("g1", "AND", ["p", "q"], "r")
        a.add_cell("g2", "NOT", ["r"], "s")
        a.add_output("s", 1)
        b = Netlist("x")
        b.add_input("p", 1)
        b.add_input("q", 1)
        b.add_cell("g1", "AND", ["p", "q"], "r")  # declare g2's input first
        b.add_cell("g2", "NOT", ["r"], "s")
        b.add_output("s", 1)
        assert netlist_fingerprint(a) == netlist_fingerprint(b)


#: pinned digest of (_golden_workload(), "race:smv,sis", 10.0, 1000,
#: salt="golden-salt") — the canonical race key; it must survive refactors
#: of the race-method spelling, or every cached race cell is orphaned
RACE_GOLDEN_DIGEST = (
    "2507fb28b2a7cdddcd965a4e5860a2aa5346aaaf65d1e281d2939d350ca5e136"
)


class TestRaceCellKeys:
    """Race cells key on the logical cell and the rival *set*."""

    def test_race_golden_digest(self):
        key = cell_key(_golden_workload(), "race:smv,sis", 10.0, 1000,
                       salt="golden-salt")
        assert key == RACE_GOLDEN_DIGEST

    def test_rival_order_is_irrelevant(self):
        w = _golden_workload()
        assert (cell_key(w, "race:smv,sis", 10.0, 1000)
                == cell_key(w, "race:sis,smv", 10.0, 1000))

    def test_aliases_share_the_entry(self):
        w = _golden_workload()
        assert (cell_key(w, "race:bdd,sat", 10.0, 1000)
                == cell_key(w, "race:taut,sat", 10.0, 1000))

    def test_race_never_collides_with_a_rival(self):
        w = _golden_workload()
        race = cell_key(w, "race:taut,sat", 10.0, 1000)
        assert race != cell_key(w, "sat", 10.0, 1000)
        assert race != cell_key(w, "taut", 10.0, 1000)

    def test_different_rosters_are_different_cells(self):
        w = _golden_workload()
        assert (cell_key(w, "race:taut,sat", 10.0, 1000)
                != cell_key(w, "race:taut,fraig", 10.0, 1000))

    def test_shard_count_is_absent_from_the_key(self):
        from repro.eval.cache import spec_key

        w = _golden_workload()
        assert (spec_key(CellSpec(w, "fraig", 10.0, 1000, shards=4))
                == spec_key(CellSpec(w, "fraig", 10.0, 1000)))


class TestMeasurementRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        m = Measurement("w", "m", "timeout", 1.2345678901234567,
                        detail="killed at the wall-clock limit (5.0s)",
                        stats={"kernel_steps": 42.0, "peak_nodes": 7.0})
        again = measurement_from_dict(json.loads(json.dumps(measurement_to_dict(m))))
        assert again == m

    def test_race_winner_string_survives_the_round_trip(self):
        m = Measurement("w", "race:sis,smv", "ok", 0.5,
                        stats={"race_winner": "sis", "race_losers": 1.0,
                               "race_cancelled_seconds": 0.25})
        again = measurement_from_dict(
            json.loads(json.dumps(measurement_to_dict(m))))
        assert again == m
        assert again.stats["race_winner"] == "sis"  # not float-coerced


class TestResultCache:
    def _m(self, status="ok", seconds=1.0):
        return Measurement("w", "m", status, seconds, stats={"kernel_steps": 3.0})

    def test_memory_round_trip_and_counters(self):
        cache = ResultCache()
        assert cache.lookup("k") is None
        assert cache.store("k", self._m()) is True
        assert cache.lookup("k") == self._m()
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_failed_measurements_are_never_cached(self):
        cache = ResultCache()
        assert cache.store("k", self._m(status="failed")) is False
        assert cache.lookup("k") is None
        assert "failed" not in CACHEABLE_STATUSES

    def test_timeout_measurements_are_cached(self):
        cache = ResultCache()
        assert cache.store("k", self._m(status="timeout")) is True
        assert cache.lookup("k").status == "timeout"

    def test_lru_eviction_in_memory(self):
        cache = ResultCache(max_memory_entries=2)
        for key in ("a", "b", "c"):
            cache.store(key, self._m())
        assert cache.lookup("a") is None      # evicted
        assert cache.lookup("c") is not None  # newest survives

    def test_disk_store_shared_between_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache(directory=directory)
        first.store("k", self._m(seconds=2.5))
        second = ResultCache(directory=directory, max_memory_entries=1)
        assert second.lookup("k") == self._m(seconds=2.5)
        assert second.hits == 1

    def test_disk_backs_memory_eviction(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "c"), max_memory_entries=1)
        cache.store("a", self._m(seconds=1.0))
        cache.store("b", self._m(seconds=2.0))  # evicts "a" from memory
        assert cache.lookup("a").seconds == 1.0  # served from disk

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        (tmp_path / "cache" / ("x" * 8 + ".json")).write_text("{not json")
        assert cache.lookup("x" * 8) is None
        assert cache.misses == 1

    def test_clear_removes_memory_and_disk(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        cache.store("a", self._m())
        cache.store("b", self._m())
        assert cache.clear() == 2
        assert cache.disk_entries() == (0, 0)
        assert cache.lookup("a") is None

    def test_disk_entries_and_counters(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        cache.store("a", self._m())
        count, nbytes = cache.disk_entries()
        assert count == 1 and nbytes > 0
        counters = cache.counters()
        assert counters["stores"] == 1
        assert counters["disk_entries"] == 1


class TestRunCellsWithCache:
    """Cache hits short-circuit before any checker dispatch."""

    @pytest.fixture(autouse=True)
    def counting_stub(self, tmp_path):
        calls_file = tmp_path / "calls"

        def stub(original, retimed, time_budget=None):
            calls_file.write_text(str(int(calls_file.read_text() or 0) + 1)
                                  if calls_file.exists() else "1")
            return VerificationResult(method="stub-count", status="equivalent",
                                      seconds=0.5, detail="counted")

        register_checker("stub-count", stub, accepts=("time_budget",),
                         replace=True)
        self.calls_file = calls_file
        yield
        unregister_checker("stub-count")

    def _calls(self):
        return int(self.calls_file.read_text()) if self.calls_file.exists() else 0

    def test_second_serial_run_never_reaches_the_checker(self):
        specs = [CellSpec(_golden_workload(), "stub-count", time_budget=5.0)]
        cache = ResultCache()
        cold = run_cells(specs, cache=cache)
        assert self._calls() == 1
        warm = run_cells(specs, cache=cache)
        assert self._calls() == 1  # short-circuited before dispatch
        assert warm == cold
        assert (cache.hits, cache.misses) == (1, 1)

    def test_on_result_streams_cache_hits_too(self):
        specs = [CellSpec(_golden_workload(), "stub-count", time_budget=5.0)]
        cache = ResultCache()
        run_cells(specs, cache=cache)
        events = []
        run_cells(specs, cache=cache,
                  on_result=lambda i, m: events.append((i, m.status)))
        assert events == [(0, "ok")]

    def test_no_cache_means_every_run_computes(self):
        specs = [CellSpec(_golden_workload(), "stub-count", time_budget=5.0)]
        run_cells(specs)
        run_cells(specs)
        assert self._calls() == 2
