"""Tests for the ``python -m repro`` command line interface."""

import pytest

from repro.cli import _parse_param, main


class TestParamParsing:
    def test_scalars(self):
        assert _parse_param("widths=2") == ("widths", 2)
        assert _parse_param("scale=0.5") == ("scale", 0.5)
        assert _parse_param("names=s344") == ("names", "s344")
        assert _parse_param("names=none") == ("names", None)

    def test_booleans(self):
        # "false" must parse as False, not as a truthy string
        assert _parse_param("no_skip=false") == ("no_skip", False)
        assert _parse_param("no_skip=true") == ("no_skip", True)

    def test_lists(self):
        assert _parse_param("widths=1,2,4") == ("widths", [1, 2, 4])
        assert _parse_param("names=s344,s382") == ("names", ["s344", "s382"])


class TestListing:
    def test_list_backends(self, capsys):
        assert main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("smv", "sis", "eijk", "eijk+", "match", "hash", "taut-rw"):
            assert name in out
        assert "synthesis" in out  # hash's kind is shown

    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("figure2", "iwls", "counters", "multiplier", "random_seq"):
            assert name in out
        assert "widths" in out  # parameters are shown


class TestRun:
    def test_run_scenario_with_params_and_jobs(self, capsys):
        code = main(["run", "--scenario", "multiplier", "--param", "widths=3",
                     "--methods", "match,hash", "--jobs", "2", "--budget", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Scenario 'multiplier'" in out
        assert "fracmul_3bit" in out
        assert "MATCH" in out and "HASH" in out
        assert "inferences" in out  # kernel steps column from hash stats

    def test_run_table1_in_process(self, capsys):
        code = main(["run", "--table", "1", "--param", "widths=1,2",
                     "--budget", "20", "--no-isolate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "figure2 n=2" in out

    def test_run_table1_scalar_width(self, capsys):
        # a single-valued widths param parses as a bare int and must still work
        code = main(["run", "--table", "1", "--param", "widths=1",
                     "--methods", "hash", "--budget", "10", "--no-isolate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure2 n=1" in out

    def test_table2_names_match_exactly_not_by_substring(self, capsys):
        # a scalar names param must select by exact benchmark name: the
        # non-existent 's344extra' selects nothing (not s344 by substring)
        code = main(["run", "--table", "2", "--param", "names=s344extra",
                     "--param", "scale=0.05", "--methods", "match",
                     "--no-isolate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "s344" not in out

    def test_run_table2_restricted(self, capsys):
        code = main(["run", "--table", "2", "--param", "scale=0.05",
                     "--param", "names=s344", "--methods", "match,hash",
                     "--jobs", "2", "--budget", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table II" in out
        assert "s344" in out


class TestAigStats:
    def test_aig_stats_smoke(self, capsys):
        code = main(["aig-stats", "--scenario", "figure2",
                     "--param", "widths=2,4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AIG rewriting statistics" in out
        assert "figure2 n=2" in out and "figure2 n=4" in out
        for column in ("pre", "post", "levels", "cuts", "rewrites",
                       "cells", "cells_opt"):
            assert column in out

    def test_aig_stats_unknown_scenario_exits_2(self, capsys):
        assert main(["aig-stats", "--scenario", "nope"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_run_accepts_the_rewrite_toggle(self, capsys):
        code = main(["run", "--scenario", "figure2", "--param", "widths=2",
                     "--methods", "hash", "--budget", "20", "--no-isolate",
                     "--no-cache", "--no-aig-opt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure2 n=2" in out


class TestErrors:
    def test_unknown_method_exits_2(self, capsys):
        code = main(["run", "--scenario", "figure2", "--methods", "nope"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown verification backend" in out

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["run", "--scenario", "nope"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown scenario" in out

    def test_unknown_param_exits_2(self, capsys):
        code = main(["run", "--scenario", "figure2", "--param", "depth=3"])
        out = capsys.readouterr().out
        assert code == 2
        assert "does not accept" in out

    def test_unknown_table_param_rejected_before_measuring(self, capsys, monkeypatch):
        # leftover params must be rejected *before* the table is run, so a
        # typo cannot discard minutes of measurement
        from repro.eval import table1

        def never_called(*a, **k):  # pragma: no cover - guards the test
            raise AssertionError("run_table1 must not run with bogus params")

        monkeypatch.setattr(table1, "run_table1", never_called)
        code = main(["run", "--table", "1", "--param", "widths=1",
                     "--param", "bogus=1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "does not accept" in out

    def test_malformed_param_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--param", "widths"])
