"""Tests for the CI counter guard (``benchmarks/compare_baseline.py``).

The policy under test: a tracked counter that appears in a run but has no
baseline entry *fails* the comparison with a per-counter message pointing at
``--rebaseline`` — new counters (like ``cache_hits``/``cache_misses``) must
be baselined deliberately, never slip through unguarded.
"""

import importlib.util
import json
import os

import pytest

_PATH = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                     "benchmarks", "compare_baseline.py")
_SPEC = importlib.util.spec_from_file_location("compare_baseline", _PATH)
compare_baseline = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baseline)


def _record(path, benches):
    payload = {"benchmarks": [
        {"name": name, "extra_info": counters} for name, counters in benches
    ]}
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture()
def files(tmp_path):
    def make(baseline, run):
        return (_record(tmp_path / "baseline.json", baseline),
                _record(tmp_path / "run.json", run))
    return make


class TestTrackedCounters:
    def test_cache_counters_are_tracked(self):
        assert "cache_hits" in compare_baseline.TRACKED_COUNTERS
        assert "cache_misses" in compare_baseline.TRACKED_COUNTERS


class TestCompare:
    def test_within_tolerance_passes(self, files, capsys):
        base, run = files([("b", {"kernel_steps": 100})],
                          [("b", {"kernel_steps": 105})])
        assert compare_baseline.compare(base, run, 0.10) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, files, capsys):
        base, run = files([("b", {"kernel_steps": 100})],
                          [("b", {"kernel_steps": 150})])
        assert compare_baseline.compare(base, run, 0.10) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_new_counter_on_known_benchmark_fails(self, files, capsys):
        base, run = files(
            [("b", {"kernel_steps": 100})],
            [("b", {"kernel_steps": 100, "cache_hits": 6})])
        assert compare_baseline.compare(base, run, 0.10) == 1
        out = capsys.readouterr().out
        assert "b/cache_hits" in out
        assert "--rebaseline" in out

    def test_new_benchmark_fails_per_counter(self, files, capsys):
        base, run = files(
            [("old", {"kernel_steps": 100})],
            [("old", {"kernel_steps": 100}),
             ("fresh", {"cache_hits": 6, "cache_misses": 0})])
        assert compare_baseline.compare(base, run, 0.10) == 1
        out = capsys.readouterr().out
        assert "fresh/cache_hits" in out and "fresh/cache_misses" in out

    def test_allow_new_downgrades_to_report(self, files, capsys):
        base, run = files(
            [("old", {"kernel_steps": 100})],
            [("old", {"kernel_steps": 100}), ("fresh", {"cache_hits": 6})])
        assert compare_baseline.compare(base, run, 0.10, allow_new=True) == 0
        out = capsys.readouterr().out
        assert "allowed by --allow-new" in out and "OK" in out

    def test_benchmark_missing_from_run_only_reports(self, files, capsys):
        base, run = files(
            [("a", {"kernel_steps": 1}), ("b", {"kernel_steps": 2})],
            [("a", {"kernel_steps": 1})])
        assert compare_baseline.compare(base, run, 0.10) == 0
        assert "missing" in capsys.readouterr().out

    def test_empty_baseline_is_an_error(self, files):
        base, run = files([], [("b", {"kernel_steps": 1})])
        assert compare_baseline.compare(base, run, 0.10) == 2

    def test_regression_and_unbaselined_both_reported(self, files, capsys):
        base, run = files(
            [("b", {"kernel_steps": 100})],
            [("b", {"kernel_steps": 200, "cache_hits": 1})])
        assert compare_baseline.compare(base, run, 0.10) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "cache_hits" in out


class TestRebaseline:
    def test_rebaseline_captures_tracked_counters(self, tmp_path):
        run = _record(tmp_path / "run.json",
                      [("b", {"cache_hits": 6, "cache_misses": 0,
                              "untracked": 9})])
        target = str(tmp_path / "baseline.json")
        assert compare_baseline.rebaseline(run, target) == 0
        written = json.loads(open(target).read())
        assert written["benchmarks"] == [
            {"name": "b", "extra_info": {"cache_hits": 6, "cache_misses": 0}}
        ]
        # and a comparison against the fresh baseline now passes
        assert compare_baseline.compare(target, run, 0.10) == 0

    def test_main_allow_new_flag(self, tmp_path, capsys):
        base = _record(tmp_path / "baseline.json", [("b", {"kernel_steps": 1})])
        run = _record(tmp_path / "run.json",
                      [("b", {"kernel_steps": 1, "cache_hits": 2})])
        assert compare_baseline.main([base, run]) == 1
        capsys.readouterr()
        assert compare_baseline.main([base, run, "--allow-new"]) == 0
