"""Tests for the fuzzing subsystem (:mod:`repro.eval.fuzz`).

Covers the spec/cell recipes (determinism, ground-truth enforcement), the
method-applicability matrix, the differential oracle's violation taxonomy,
a clean end-to-end sweep, the buggy-checker detection path with shrinking
and replayable repro files, the byte-identity of the rendered table across
execution modes, and the ``repro fuzz`` CLI driver.
"""

import json
import os

import pytest

from repro.circuits.mutate import Mutation
from repro.circuits.simulate import find_mismatch
from repro.cli import main
from repro.eval.fuzz import (
    FLAVOURS,
    REPRO_SCHEMA,
    FuzzError,
    FuzzSpec,
    FuzzViolation,
    build_cell,
    load_repro,
    make_specs,
    method_applies,
    run_fuzz,
    shrink_violation,
    violation_of,
    write_repro,
)
from repro.eval.runner import Measurement, run_cell
from repro.eval.scenarios import available_scenarios, build_scenario
from repro.verification.common import VerificationResult
from repro.verification.registry import (
    get_checker,
    register_checker,
    unregister_checker,
)

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="stub backends only reach isolated workers via fork",
)

#: small-but-real sweep dimensions used throughout (fast to build and check)
SMALL = dict(n_inputs=3, n_flipflops=3, n_gates=12, n_faults=1)


class TestSpecs:
    def test_make_specs_cycles_flavours(self):
        specs = make_specs(6, seed=10)
        assert [s.flavour for s in specs] == list(FLAVOURS) * 2
        assert [s.seed for s in specs] == list(range(10, 16))

    def test_spec_round_trip_with_mutations(self):
        spec = FuzzSpec(seed=3, flavour="fault", n_gates=8,
                        mutations=(Mutation("stuck_at", "g1", value=1),
                                   Mutation("gate_swap", "g2", arg="NOR")))
        assert FuzzSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_flavour_rejected(self):
        with pytest.raises(FuzzError):
            build_cell(FuzzSpec(seed=0, flavour="chaos"))


class TestBuildCell:
    def test_retime_cell_is_expected_equivalent(self):
        cell = build_cell(FuzzSpec(seed=1, flavour="retime", **SMALL))
        assert cell.expected == "equivalent"
        assert not cell.mutations
        assert cell.workload.cut
        assert cell.workload.retimed.registers.keys() != \
            cell.workload.original.registers.keys()

    @pytest.mark.parametrize("flavour", ["fault", "retime-fault"])
    def test_fault_cells_carry_visible_mutations(self, flavour):
        cell = build_cell(FuzzSpec(seed=2, flavour=flavour, **SMALL))
        assert cell.expected == "not_equivalent"
        assert cell.mutations
        assert find_mismatch(cell.workload.original,
                             cell.workload.retimed) is not None

    def test_fault_cell_keeps_register_set(self):
        # the cut-point backends rely on this: a 'fault' cell mutates logic
        # only, never the state elements
        cell = build_cell(FuzzSpec(seed=5, flavour="fault", **SMALL))
        assert cell.workload.original.registers.keys() == \
            cell.workload.retimed.registers.keys()

    def test_deterministic_rebuild(self):
        spec = FuzzSpec(seed=4, flavour="retime-fault", **SMALL)
        a, b = build_cell(spec), build_cell(spec)
        assert a.mutations == b.mutations
        assert find_mismatch(a.workload.retimed, b.workload.retimed,
                             cycles=32) is None

    def test_pinned_spec_replays_identically(self):
        spec = FuzzSpec(seed=6, flavour="fault", **SMALL)
        first = build_cell(spec)
        replay = build_cell(first.pinned_spec)
        assert replay.mutations == first.mutations
        assert find_mismatch(first.workload.retimed,
                             replay.workload.retimed, cycles=32) is None

    def test_pinned_invisible_mutation_rejected(self):
        # a no-op-ish mutation list (swap operands of a commutative AND)
        # is not simulation-visible, so ground truth enforcement fires
        base_cell = build_cell(FuzzSpec(seed=6, flavour="fault", **SMALL))
        target = base_cell.workload.original
        and_cells = sorted(c.name for c in target.cells.values()
                           if c.type == "AND")
        if not and_cells:  # pragma: no cover - seed 6 does have AND gates
            pytest.skip("no commutative gate to pin")
        spec = FuzzSpec(seed=6, flavour="fault",
                        mutations=(Mutation("operand_swap", and_cells[0]),),
                        **SMALL)
        with pytest.raises(FuzzError, match="not simulation-visible"):
            build_cell(spec)

    def test_fault_provenance_pins_applied_mutations(self):
        cell = build_cell(FuzzSpec(seed=7, flavour="fault", **SMALL))
        pinned = cell.workload.provenance["params"]["mutations"]
        assert pinned == [m.to_dict() for m in cell.mutations]


class TestMethodApplies:
    def test_matrix(self):
        cases = {
            # cut-point checkers need identical register sets: fault only
            "taut": {"fault"},
            "sat": {"fault"},
            "fraig": {"fault"},
            # product-FSM checkers apply everywhere
            "smv": set(FLAVOURS),
            "sis": set(FLAVOURS),
            "eijk": set(FLAVOURS),
            # the formal synthesis step and the matcher: pure retiming only
            "hash": {"retime"},
            "match": {"retime"},
        }
        for name, expected in cases.items():
            checker = get_checker(name)
            got = {f for f in FLAVOURS if method_applies(checker, f)}
            assert got == expected, name


def _measurement(verdict, cex=None, certified=None, detail=""):
    stats = {} if certified is None else {"cex_certified": certified}
    return Measurement(workload="w", method="m", status="x", seconds=0.0,
                       verdict=verdict, counterexample=cex, stats=stats,
                       detail=detail)


class TestViolationOf:
    def test_timeout_is_never_a_violation(self):
        checker = get_checker("sis")
        assert violation_of(checker, "equivalent",
                            _measurement("timeout")) is None

    def test_error_only_for_complete_backends(self):
        measurement = _measurement("error", detail="lost")
        assert violation_of(get_checker("sis"), "equivalent",
                            measurement) == ("error", "lost")
        assert violation_of(get_checker("eijk"), "equivalent",
                            measurement) is None

    def test_false_alarm_and_missed_fault(self):
        checker = get_checker("sis")
        kind, _ = violation_of(
            checker, "equivalent",
            _measurement("not_equivalent", cex={"a": True}, certified=1.0))
        assert kind == "false_alarm"
        kind, _ = violation_of(checker, "not_equivalent",
                               _measurement("equivalent"))
        assert kind == "missed_fault"

    def test_uncertified_refutation_is_a_violation(self):
        checker = get_checker("sis")
        assert violation_of(
            checker, "not_equivalent",
            _measurement("not_equivalent", cex=None))[0] == "uncertified_cex"
        assert violation_of(
            checker, "not_equivalent",
            _measurement("not_equivalent", cex={"a": True},
                         certified=0.0))[0] == "uncertified_cex"
        assert violation_of(
            checker, "not_equivalent",
            _measurement("not_equivalent", cex={"a": True},
                         certified=1.0)) is None


class TestCleanSweep:
    def test_small_sweep_is_violation_free(self):
        specs = make_specs(3, seed=0, **SMALL)
        report = run_fuzz(specs, methods=("sis", "smv"), time_budget=30.0,
                          shrink=False)
        assert not report.violations
        assert not report.disagreements
        c = report.counters
        assert c["cells"] == 3.0
        assert c["fault_cells"] == 2.0
        assert c["faults_detected"] == 2.0
        assert c["faults_injected"] >= 2.0
        assert c["cex_certified"] >= 2.0

    def test_table_renders_ground_truth(self):
        specs = make_specs(3, seed=0, **SMALL)
        report = run_fuzz(specs, methods=("sis",), time_budget=30.0,
                          shrink=False)
        out = report.render()
        assert "EQ" in out and "NEQ" in out
        assert "violations: 0" in out
        assert "=" in out and "!=" in out

    @needs_fork
    def test_table_is_identical_serial_and_parallel(self):
        specs = make_specs(3, seed=0, **SMALL)
        serial = run_fuzz(specs, methods=("sis",), time_budget=30.0,
                          shrink=False).render()
        parallel = run_fuzz(specs, methods=("sis",), time_budget=30.0,
                            jobs=2, isolate=True, shrink=False).render()
        assert serial == parallel


# ---------------------------------------------------------------------------
# The buggy-checker path: detection, shrinking, repro files
# ---------------------------------------------------------------------------

def _blind(original, retimed, time_budget=None):
    """A broken backend that calls everything equivalent."""
    return VerificationResult(method="blind", status="equivalent",
                              seconds=0.0, detail="stubbed")


@pytest.fixture()
def blind_checker():
    register_checker("blind", _blind, accepts=("time_budget",), replace=True)
    yield get_checker("blind")
    unregister_checker("blind")


class TestBuggyCheckerCaught:
    def test_missed_faults_shrink_to_replayable_repros(self, blind_checker,
                                                       tmp_path):
        specs = make_specs(3, seed=0, **SMALL)
        report = run_fuzz(specs, methods=("sis", "blind"), time_budget=30.0,
                          out_dir=str(tmp_path), max_shrinks=8)
        missed = [v for v in report.violations if v.kind == "missed_fault"]
        assert len(missed) == 2  # both fault cells
        assert report.disagreements  # sis refutes, blind agrees: a conflict
        assert report.counters["faults_detected"] == 0.0
        assert len(report.repro_paths) == 2
        for path in report.repro_paths:
            assert os.path.exists(path)
            spec, method, kind = load_repro(path)
            assert method == "blind" and kind == "missed_fault"
            # the minimised cell still reproduces the violation end to end
            cell = build_cell(spec)
            measurement = run_cell(cell.workload, method, 30.0, 500_000)
            found = violation_of(blind_checker, cell.expected, measurement)
            assert found is not None and found[0] == kind

    def test_shrink_reduces_dimensions(self, blind_checker):
        spec = build_cell(FuzzSpec(seed=1, flavour="fault", n_inputs=4,
                                   n_flipflops=5, n_gates=24,
                                   n_faults=2)).pinned_spec
        violation = FuzzViolation(cell=spec.name, method="blind",
                                  kind="missed_fault", detail="", spec=spec)
        shrunk, tried = shrink_violation(violation, time_budget=30.0,
                                         max_shrinks=12)
        assert 0 < tried <= 12
        assert (len(shrunk.mutations) < len(spec.mutations)
                or shrunk.n_gates < spec.n_gates
                or shrunk.n_flipflops < spec.n_flipflops
                or shrunk.n_inputs < spec.n_inputs)
        # the shrunk spec pins its mutations so the repro replays verbatim
        assert shrunk.flavour != "fault" or shrunk.mutations

    def test_repro_file_shape(self, blind_checker, tmp_path):
        spec = build_cell(FuzzSpec(seed=2, flavour="fault",
                                   **SMALL)).pinned_spec
        violation = FuzzViolation(cell=spec.name, method="blind",
                                  kind="missed_fault", detail="d", spec=spec)
        path = write_repro(str(tmp_path), spec, violation, shrink_steps=0,
                           time_budget=30.0, node_budget=500_000)
        payload = json.loads(open(path).read())
        assert payload["schema"] == REPRO_SCHEMA
        assert payload["method"] == "blind"
        assert payload["violation"] == "missed_fault"
        assert payload["measurement"]["verdict"] == "equivalent"
        assert FuzzSpec.from_dict(payload["spec"]) == spec

    def test_load_repro_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(FuzzError):
            load_repro(str(path))


class TestScenario:
    def test_fuzz_is_a_registered_scenario(self):
        assert "fuzz" in available_scenarios()
        workloads = build_scenario("fuzz", cells=3, **SMALL)
        assert len(workloads) == 3
        assert [w.provenance["scenario"] for w in workloads] == ["fuzz"] * 3


class TestCli:
    def test_fuzz_sweep_exits_zero_and_prints_table(self, capsys, tmp_path):
        code = main(["fuzz", "--cells", "3", "--inputs", "3",
                     "--flipflops", "3", "--gates", "12", "--faults", "1",
                     "--methods", "sis", "--budget", "30", "--no-cache",
                     "--out-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fuzz sweep: 3 cells" in captured.out
        assert "violations: 0" in captured.out

    def test_fuzz_replay_of_a_live_repro_exits_one(self, capsys, tmp_path):
        register_checker("blind", _blind, accepts=("time_budget",),
                         replace=True)
        try:
            code = main(["fuzz", "--cells", "3", "--inputs", "3",
                         "--flipflops", "3", "--gates", "12", "--faults", "1",
                         "--methods", "sis,blind", "--budget", "30",
                         "--no-cache", "--max-shrinks", "4",
                         "--out-dir", str(tmp_path)])
            captured = capsys.readouterr()
            assert code == 1
            assert "VIOLATION" in captured.err
            repros = sorted(os.listdir(tmp_path))
            assert repros
            code = main(["fuzz", "--replay", str(tmp_path / repros[0]),
                         "--budget", "30"])
            captured = capsys.readouterr()
            assert code == 1  # the violation still reproduces
            assert "reproduces" in captured.out
        finally:
            unregister_checker("blind")

    def test_fuzz_replay_missing_file_exits_two(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", str(tmp_path / "absent.json")])
        assert code == 2
