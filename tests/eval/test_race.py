"""Tests for portfolio racing (:mod:`repro.eval.runner` + the pool).

Covers the race method grammar (parsing, aliases, canonicalisation), the
deterministic :func:`merge_race` reducer (winner relabelling, loser
accounting, differential cross-checks), serial answer-fast execution, and
the pool's cancel protocol: a rigged slow rival is killed promptly after
the fast rival's definite verdict, without corrupting the pool.
"""

import os
import threading
import time

import pytest

from repro.eval.cache import ResultCache
from repro.eval.runner import (
    DEFAULT_RACE_RIVALS,
    CellSpec,
    Measurement,
    canonical_method,
    merge_race,
    merge_shards,
    method_checker,
    parse_race,
    render_table,
    run_rows,
    run_spec,
    validate_method,
)
from repro.eval.service import DaemonClient, WorkerPool, serve
from repro.eval.workloads import table1_workload
from repro.verification.common import VerificationResult
from repro.verification.registry import register_checker, unregister_checker

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="stub backends only reach isolated workers via fork",
)


# ---------------------------------------------------------------------------
# Deterministic stub backends (registered for this module only)
# ---------------------------------------------------------------------------

def _stub_fast(original, retimed, time_budget=None):
    return VerificationResult(method="race-fast", status="equivalent",
                              seconds=0.01, detail="stub fast",
                              stats={"kernel_steps": 7.0})


def _stub_slow(original, retimed, time_budget=None):
    time.sleep(300)  # never polls any budget; only a kill stops it


def _stub_indefinite(original, retimed, time_budget=None):
    return VerificationResult(method="race-maybe", status="timeout",
                              seconds=float(time_budget or 0.0),
                              detail="gave up")


def _stub_refute(original, retimed, time_budget=None):
    return VerificationResult(method="race-refute", status="not_equivalent",
                              seconds=0.01, detail="stub refutation")


_STUBS = {
    "race-fast": _stub_fast,
    "race-slow": _stub_slow,
    "race-maybe": _stub_indefinite,
    "race-refute": _stub_refute,
}


@pytest.fixture(scope="module", autouse=True)
def stub_backends():
    for name, fn in _STUBS.items():
        register_checker(name, fn, accepts=("time_budget",), replace=True)
    yield
    for name in _STUBS:
        unregister_checker(name)


@pytest.fixture(scope="module")
def tiny_workload():
    return table1_workload(1)


def _measurement(method, status, seconds=1.0, verdict="", stats=None, **kw):
    return Measurement(workload="w", method=method, status=status,
                       seconds=seconds, verdict=verdict,
                       stats=dict(stats or {}), **kw)


# ---------------------------------------------------------------------------
# Method grammar
# ---------------------------------------------------------------------------

class TestRaceGrammar:
    def test_plain_method_is_not_a_race(self):
        assert parse_race("sat") is None
        assert parse_race("taut-rw") is None

    def test_bare_race_uses_the_default_rivals(self):
        assert parse_race("race") == DEFAULT_RACE_RIVALS
        for rival in DEFAULT_RACE_RIVALS:
            validate_method(rival)  # every default rival is registered

    def test_rival_order_is_preserved(self):
        assert parse_race("race:smv,sis") == ("smv", "sis")

    def test_bdd_alias_resolves_to_taut(self):
        assert parse_race("race:bdd,sat,fraig") == ("taut", "sat", "fraig")

    def test_single_rival_is_rejected(self):
        with pytest.raises(ValueError):
            parse_race("race:sat")

    def test_duplicate_rivals_are_rejected(self):
        with pytest.raises(ValueError):
            parse_race("race:sat,sat")
        with pytest.raises(ValueError):
            parse_race("race:bdd,taut")  # alias collides post-resolution

    def test_unknown_rival_raises_keyerror(self):
        with pytest.raises(KeyError):
            parse_race("race:sat,nosuch")

    def test_canonical_method_sorts_the_roster(self):
        assert canonical_method("race:smv,sis") == "race:sis,smv"
        assert canonical_method("race:sis,smv") == "race:sis,smv"
        assert (canonical_method("race:bdd,sat")
                == canonical_method("race:taut,sat"))

    def test_canonical_method_keeps_plain_methods(self):
        assert canonical_method("sat") == "sat"

    def test_validate_method_accepts_both_kinds(self):
        validate_method("sat")
        validate_method("race:sat,taut")
        with pytest.raises(KeyError):
            validate_method("nosuch")
        with pytest.raises(KeyError):
            validate_method("race:sat,nosuch")

    def test_method_checker_is_synthetic_for_races(self):
        checker = method_checker("race:sat,taut")
        assert checker.name == "race:sat,taut"
        assert checker.complete  # both rivals are complete
        assert not checker.needs_cut

    def test_method_checker_completeness_needs_every_rival(self):
        # eijk's invariant method is incomplete, so the ensemble is too
        assert not method_checker("race:sat,eijk").complete


# ---------------------------------------------------------------------------
# The merge_race reducer
# ---------------------------------------------------------------------------

class TestMergeRace:
    def _spec(self, tiny_workload):
        return CellSpec(tiny_workload, "race:race-fast,race-slow")

    def test_winner_is_relabelled_with_race_stats(self, tiny_workload):
        winner = _measurement("race-fast", "ok", seconds=0.5,
                              verdict="equivalent",
                              stats={"kernel_steps": 7.0})
        merged = merge_race(self._spec(tiny_workload),
                            finished=[("race-fast", winner)],
                            cancelled=[("race-slow", 0.25)])
        assert merged.method == "race:race-fast,race-slow"
        assert merged.status == "ok"
        assert merged.verdict == "equivalent"
        assert merged.seconds == 0.5
        assert merged.stats["race_winner"] == "race-fast"
        assert merged.stats["race_rivals"] == 2.0
        assert merged.stats["race_losers"] == 1.0
        assert merged.stats["race_cancelled_seconds"] == 0.25
        assert merged.stats["kernel_steps"] == 7.0  # winner's own counters

    def test_cross_check_disagreement_fails_the_cell(self, tiny_workload):
        yes = _measurement("race-fast", "ok", verdict="equivalent")
        no = _measurement("race-refute", "failed", verdict="not_equivalent")
        merged = merge_race(self._spec(tiny_workload),
                            finished=[("race-fast", yes),
                                      ("race-refute", no)])
        assert merged.status == "failed"
        assert merged.verdict == "error"
        assert "cross-check" in merged.detail
        assert "race-fast=equivalent" in merged.detail
        assert "race-refute=not_equivalent" in merged.detail

    def test_agreeing_late_finisher_is_not_a_disagreement(self, tiny_workload):
        first = _measurement("race-fast", "ok", verdict="equivalent")
        late = _measurement("race-slow", "ok", verdict="equivalent")
        merged = merge_race(self._spec(tiny_workload),
                            finished=[("race-fast", first),
                                      ("race-slow", late)])
        assert merged.status == "ok"
        assert merged.stats["race_winner"] == "race-fast"

    def test_all_indefinite_with_timeout_is_the_dash(self, tiny_workload):
        dash = _measurement("race-maybe", "timeout", verdict="timeout")
        err = _measurement("race-fast", "failed", verdict="error")
        merged = merge_race(self._spec(tiny_workload),
                            finished=[("race-maybe", dash),
                                      ("race-fast", err)],
                            not_run=["race-slow"])
        assert merged.status == "timeout"
        assert merged.verdict == "timeout"
        assert "no definite verdict" in merged.detail
        assert "race-slow: not run" in merged.detail
        assert merged.stats["race_losers"] == 2.0  # nobody won

    def test_refuting_winner_keeps_its_counterexample(self, tiny_workload):
        cex = {"pi0": True}
        no = _measurement("race-refute", "failed", verdict="not_equivalent",
                          counterexample=cex)
        merged = merge_race(self._spec(tiny_workload),
                            finished=[("race-refute", no)],
                            not_run=["race-fast"])
        assert merged.verdict == "not_equivalent"
        assert merged.counterexample == cex


# ---------------------------------------------------------------------------
# The merge_shards reducer (backend-independent invariants)
# ---------------------------------------------------------------------------

class TestMergeShards:
    def _spec(self, tiny_workload):
        # taut-rw declares "vectors" additive; peaks take the max
        return CellSpec(tiny_workload, "taut-rw", shards=2)

    def test_sum_and_max_split_by_declared_stats(self, tiny_workload):
        parts = [
            _measurement("taut-rw", "ok", seconds=1.0, verdict="equivalent",
                         stats={"vectors": 8.0, "graph_nodes": 10.0}),
            _measurement("taut-rw", "ok", seconds=3.0, verdict="equivalent",
                         stats={"vectors": 8.0, "graph_nodes": 12.0}),
        ]
        merged = merge_shards(self._spec(tiny_workload), parts)
        assert merged.status == "ok"
        assert merged.verdict == "equivalent"
        assert merged.stats["vectors"] == 16.0     # declared additive
        assert merged.stats["graph_nodes"] == 12.0  # peak: max
        assert merged.stats["shards"] == 2.0
        assert merged.seconds == 3.0  # the slowest shard is the critical path
        assert merged.detail.startswith("merged 2 shards; ")

    def test_any_refuting_shard_refutes_the_cell(self, tiny_workload):
        cex = {"pi0": False}
        parts = [
            _measurement("taut-rw", "ok", verdict="equivalent"),
            _measurement("taut-rw", "failed", verdict="not_equivalent",
                         detail="refuted in shard", counterexample=cex),
        ]
        merged = merge_shards(self._spec(tiny_workload), parts)
        assert merged.status == "failed"
        assert merged.verdict == "not_equivalent"
        assert merged.counterexample == cex
        assert merged.detail == "refuted in shard"

    def test_timeout_shard_dashes_the_cell(self, tiny_workload):
        parts = [
            _measurement("taut-rw", "ok", verdict="equivalent"),
            _measurement("taut-rw", "timeout", verdict="timeout"),
        ]
        merged = merge_shards(self._spec(tiny_workload), parts)
        assert merged.status == "timeout"
        assert merged.verdict == "timeout"


# ---------------------------------------------------------------------------
# Serial answer-fast execution
# ---------------------------------------------------------------------------

class TestSerialRace:
    def test_first_definite_rival_wins_and_rest_never_run(self, tiny_workload):
        spec = CellSpec(tiny_workload, "race:race-fast,race-slow",
                        time_budget=5.0)
        measurement = run_spec(spec)
        assert measurement.status == "ok"
        assert measurement.verdict == "equivalent"
        assert measurement.stats["race_winner"] == "race-fast"
        assert measurement.stats["race_losers"] == 0.0  # never dispatched
        assert measurement.stats["race_rivals"] == 2.0

    def test_indefinite_rival_falls_through_to_the_next(self, tiny_workload):
        spec = CellSpec(tiny_workload, "race:race-maybe,race-fast",
                        time_budget=0.5)
        measurement = run_spec(spec)
        assert measurement.verdict == "equivalent"
        assert measurement.stats["race_winner"] == "race-fast"
        assert measurement.stats["race_losers"] == 1.0  # the indefinite rival


# ---------------------------------------------------------------------------
# Pool racing: cancellation, reaping, pool health
# ---------------------------------------------------------------------------

@needs_fork
class TestPoolRace:
    def test_slow_rival_is_cancelled_promptly(self, tiny_workload):
        spec = CellSpec(tiny_workload, "race:race-slow,race-fast",
                        time_budget=120.0)
        with WorkerPool(2, grace=2.0) as pool:
            started = time.monotonic()
            results = pool.run([(0, spec)])
            elapsed = time.monotonic() - started
            assert pool.cancelled == 1
            recycled = pool.recycled
            # the pool must stay usable after the kill
            again = pool.run(
                [(0, CellSpec(tiny_workload, "race-fast", time_budget=5.0))])
            assert again[0].verdict == "equivalent"
            assert pool.recycled == recycled  # no surprise extra recycling
        # answer-fast: nowhere near the sleeper's 300 s, nor the budget;
        # generous bound for slow CI machines
        assert elapsed < 30.0
        merged = results[0]
        assert merged.verdict == "equivalent"
        assert merged.stats["race_winner"] == "race-fast"
        assert merged.stats["race_losers"] == 1.0
        assert merged.stats["race_cancelled_seconds"] > 0.0

    def test_cancel_reaping_beats_the_budget_deadline(self, tiny_workload):
        """Satellite: the select loop wakes for the *cancel* deadline.

        The sleeper's budget kill would fire after 120 s; the tightened
        (deadline, cancel) wait must reap it in roughly ``grace`` instead,
        even when the cancel message itself is lost on a wedged worker.
        """
        spec = CellSpec(tiny_workload, "race:race-slow,race-fast",
                        time_budget=120.0)
        with WorkerPool(2, grace=1.0) as pool:
            started = time.monotonic()
            pool.run([(0, spec)])
            elapsed = time.monotonic() - started
        assert elapsed < 20.0  # grace-scale, not budget-scale

    def test_queued_sibling_is_dropped_not_run(self, tiny_workload):
        # one worker: the fast rival runs first, the sleeper never leaves
        # the queue, so no kill is needed at all
        spec = CellSpec(tiny_workload, "race:race-fast,race-slow",
                        time_budget=120.0)
        with WorkerPool(1, grace=1.0) as pool:
            results = pool.run([(0, spec)])
            assert pool.cancelled == 0
            assert pool.recycled == 0
        merged = results[0]
        assert merged.stats["race_winner"] == "race-fast"
        assert merged.stats["race_losers"] == 0.0
        assert merged.stats["race_cancelled_seconds"] == 0.0

    def test_all_indefinite_race_is_a_dash(self, tiny_workload):
        spec = CellSpec(tiny_workload, "race:race-maybe,race-to",
                        time_budget=0.5)
        register_checker("race-to", _stub_indefinite,
                         accepts=("time_budget",), replace=True)
        try:
            with WorkerPool(2, grace=2.0) as pool:
                results = pool.run([(0, spec)])
        finally:
            unregister_checker("race-to")
        assert results[0].status == "timeout"
        assert "no definite verdict" in results[0].detail

    def test_race_counts_as_one_logical_cell(self, tiny_workload):
        spec = CellSpec(tiny_workload, "race:race-fast,race-maybe",
                        time_budget=5.0)
        seen = []
        with WorkerPool(2, grace=2.0) as pool:
            pool.run([(0, spec)], on_result=lambda i, m: seen.append(i))
            assert pool.cells_run == 1
        assert seen == [0]


# ---------------------------------------------------------------------------
# Mode parity: serial and pool runs agree through the shared cache
# ---------------------------------------------------------------------------

@needs_fork
class TestRaceModeParity:
    def test_serial_and_jobs_tables_are_identical(self, tiny_workload,
                                                  tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        methods = ["race:race-fast,race-maybe"]

        def render(jobs):
            rows = run_rows([tiny_workload], methods, time_budget=5.0,
                            jobs=jobs, cache=cache)
            return render_table(rows, methods, title="parity")

        cold = render(4)   # pool run populates the cache
        warm = render(1)   # serial replays the merged measurement
        assert cold == warm
        assert cache.hits >= 1

    def test_daemon_replays_the_merged_race_measurement(self, tiny_workload,
                                                        tmp_path):
        socket_path = str(tmp_path / "race.sock")
        cache = ResultCache(str(tmp_path / "cache"))
        ready = threading.Event()
        thread = threading.Thread(
            target=serve,
            kwargs=dict(socket_path=socket_path, jobs=2, cache=cache,
                        log=lambda msg: None, ready=ready),
            daemon=True,
        )
        thread.start()
        assert ready.wait(10.0), "daemon failed to start"
        client = DaemonClient(socket_path)
        try:
            spec = CellSpec(tiny_workload, "race:race-fast,race-maybe",
                            time_budget=5.0)
            cold = client.run_cells([spec])
            warm = client.run_cells([spec])
            assert warm == cold  # the merged measurement replays exactly
            assert cold[0].stats["race_winner"] == "race-fast"
            info = client.ping()
            assert info["cells_run"] == 1  # one logical cell, not two
            assert "cancelled" in info
        finally:
            try:
                client.shutdown()
            except (OSError, EOFError):
                pass
            thread.join(10.0)
        assert not thread.is_alive(), "daemon failed to shut down"


# ---------------------------------------------------------------------------
# The fuzz oracle treats a race as one backend
# ---------------------------------------------------------------------------

class TestFuzzRace:
    def test_race_applies_only_where_every_rival_does(self):
        from repro.eval.fuzz import method_applies

        # cut-point rivals restrict the ensemble to fault cells
        assert not method_applies(method_checker("race:taut,sat"), "retime")
        assert method_applies(method_checker("race:taut,sat"), "fault")
        # the default roster includes hash (synthesis): retimings only
        assert method_applies(method_checker("race"), "retime")
        assert not method_applies(method_checker("race"), "fault")
        # a roster of unrestricted rivals covers every flavour
        for flavour in ("retime", "fault", "retime-fault"):
            assert method_applies(method_checker("race:sis,smv"), flavour)

    def test_fuzz_sweep_with_a_race_ensemble_is_clean(self):
        from repro.eval.fuzz import make_specs, run_fuzz

        report = run_fuzz(make_specs(4, seed=11),
                          methods=["race:sis,smv"],
                          time_budget=20.0, jobs=1, isolate=False,
                          shrink=False)
        assert not report.violations
        assert not report.disagreements
        # fault cells were judged (the ensemble is applicable and definite)
        assert report.counters["fault_cells"] >= 1.0
        assert (report.counters["faults_detected"]
                == report.counters["fault_cells"])
