"""Tests for the process-isolated measurement runner.

Covers the timeout / failed / budget paths, ``Measurement.render``, the
enforced wall-clock kill and the serial-vs-parallel determinism guarantee.
"""

import os
import time

import pytest

from repro.circuits.generators import counter
from repro.eval.runner import (
    CellSpec,
    Measurement,
    render_table,
    run_cell,
    run_cells,
    run_row,
    run_rows,
    run_verifier,
)
from repro.eval.scenarios import build_scenario
from repro.eval.workloads import Workload, table1_workload
from repro.verification.common import VerificationError, VerificationResult
from repro.verification.registry import register_checker, unregister_checker

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="stub backends only reach isolated workers via fork",
)


# ---------------------------------------------------------------------------
# Deterministic stub backends (registered for this module only)
# ---------------------------------------------------------------------------

def _stub_ok(original, retimed, time_budget=None):
    return VerificationResult(method="stub-ok", status="equivalent",
                              seconds=1.23, detail="stubbed",
                              stats={"kernel_steps": 42.0})


def _stub_coop_timeout(original, retimed, time_budget=None):
    return VerificationResult(method="stub-to", status="timeout",
                              seconds=float(time_budget or 0.0),
                              detail="cooperative budget check fired")


def _stub_raise(original, retimed, time_budget=None):
    raise VerificationError("boom: malformed problem")


def _stub_crash(original, retimed, time_budget=None):
    raise RuntimeError("unexpected checker bug")


def _stub_sleep(original, retimed, time_budget=None):
    time.sleep(300)  # never polls any budget


def _stub_die(original, retimed, time_budget=None):
    os._exit(3)  # simulates a segfaulting / OOM-killed worker


_STUBS = {
    "stub-ok": _stub_ok,
    "stub-to": _stub_coop_timeout,
    "stub-raise": _stub_raise,
    "stub-crash": _stub_crash,
    "stub-sleep": _stub_sleep,
    "stub-die": _stub_die,
}


@pytest.fixture(scope="module", autouse=True)
def stub_backends():
    for name, fn in _STUBS.items():
        register_checker(name, fn, accepts=("time_budget",), replace=True)
    yield
    for name in _STUBS:
        unregister_checker(name)


@pytest.fixture(scope="module")
def tiny_workload():
    return table1_workload(1)


class TestMeasurementRender:
    def test_ok_renders_seconds(self):
        m = Measurement("w", "m", "ok", 1.2345)
        assert m.render() == "1.23"
        assert m.render(precision=3) == "1.234"

    def test_timeout_renders_dash(self):
        assert Measurement("w", "m", "timeout", 60.0).render() == "-"

    def test_failed_renders_question_mark(self):
        assert Measurement("w", "m", "failed", 0.1).render() == "?"


class TestRunCellPaths:
    def test_ok_path_copies_structured_stats(self, tiny_workload):
        m = run_cell(tiny_workload, "stub-ok")
        assert (m.status, m.seconds) == ("ok", 1.23)
        assert m.stats["kernel_steps"] == 42.0

    def test_cooperative_timeout_path(self, tiny_workload):
        m = run_cell(tiny_workload, "stub-to", time_budget=7.0)
        assert m.status == "timeout"
        assert m.seconds == 7.0

    def test_verification_error_becomes_failed_cell(self, tiny_workload):
        # the PR-3 bugfix: a raising checker must not abort the table run
        m = run_cell(tiny_workload, "stub-raise")
        assert m.status == "failed"
        assert "VerificationError" in m.detail and "boom" in m.detail

    def test_unexpected_exception_becomes_failed_cell(self, tiny_workload):
        m = run_cell(tiny_workload, "stub-crash")
        assert m.status == "failed"
        assert "RuntimeError" in m.detail

    def test_interface_mismatch_becomes_failed_cell(self, tiny_workload):
        # a real VerificationError out of product_fsm (input mismatch)
        bad = Workload(name="bad", original=tiny_workload.original,
                       cut=tiny_workload.cut, retimed=counter(2))
        m = run_verifier(bad, "smv", time_budget=10)
        assert m.status == "failed"
        assert "mismatch" in m.detail

    def test_node_budget_overrun_is_a_timeout(self):
        workload = table1_workload(8)
        m = run_cell(workload, "smv", time_budget=60, node_budget=100)
        assert m.status == "timeout"
        assert "node" in m.detail.lower()

    def test_unknown_method_raises_eagerly(self, tiny_workload):
        with pytest.raises(KeyError, match="unknown verification backend"):
            run_cell(tiny_workload, "nope")
        with pytest.raises(KeyError):
            run_cells([CellSpec(tiny_workload, "nope")])


@needs_fork
class TestIsolatedExecution:
    def test_non_cooperative_checker_killed_at_wall_clock_limit(self, tiny_workload):
        start = time.monotonic()
        (m,) = run_cells([CellSpec(tiny_workload, "stub-sleep", time_budget=1.0)],
                         jobs=1, isolate=True)
        elapsed = time.monotonic() - start
        assert m.status == "timeout"
        assert "wall-clock" in m.detail
        assert m.seconds == 1.0
        # killed promptly (budget + grace + scheduling slack), nowhere near
        # the 300s the stub would cooperatively take
        assert elapsed < 5.0

    def test_dead_worker_reported_as_failed(self, tiny_workload):
        (m,) = run_cells([CellSpec(tiny_workload, "stub-die", time_budget=10.0)],
                         jobs=1, isolate=True)
        assert m.status == "failed"
        assert "exit code 3" in m.detail

    def test_results_follow_submission_order_not_completion_order(self, tiny_workload):
        specs = [
            CellSpec(tiny_workload, "stub-sleep", time_budget=1.0),  # finishes last
            CellSpec(tiny_workload, "stub-ok", time_budget=10.0),    # finishes first
        ]
        results = run_cells(specs, jobs=2, isolate=True)
        assert [m.method for m in results] == ["stub-sleep", "stub-ok"]
        assert [m.status for m in results] == ["timeout", "ok"]

    def test_parallel_requires_isolation(self, tiny_workload):
        with pytest.raises(ValueError, match="isolate"):
            run_cells([CellSpec(tiny_workload, "stub-ok")], jobs=2, isolate=False)


@needs_fork
class TestDeterminism:
    METHODS = ["stub-ok", "stub-to"]

    def _render(self, jobs: int) -> str:
        workloads = build_scenario("figure2", widths=[1, 2, 3])
        rows = run_rows(workloads, self.METHODS, time_budget=5.0,
                        jobs=jobs, isolate=True)
        return render_table(rows, self.METHODS, title="determinism",
                            inference_method="stub-ok")

    def test_serial_and_parallel_tables_are_byte_identical(self):
        assert self._render(jobs=1) == self._render(jobs=4)

    def test_inferences_column_rendered_from_stats(self):
        text = self._render(jobs=4)
        assert "inferences" in text
        assert "42" in text


class TestRowAssembly:
    def test_run_row_in_process(self, tiny_workload):
        row = run_row(tiny_workload, ["stub-ok", "stub-to"], time_budget=2.0)
        assert set(row.cells) == {"stub-ok", "stub-to"}
        assert row.cell("stub-ok").status == "ok"

    @needs_fork
    def test_run_rows_reassembles_by_workload(self):
        workloads = build_scenario("figure2", widths=[1, 2])
        rows = run_rows(workloads, ["stub-ok"], jobs=2, isolate=True)
        assert [r.workload.name for r in rows] == ["figure2 n=1", "figure2 n=2"]
        assert all(r.cells["stub-ok"].workload == r.workload.name for r in rows)


class TestRealBackendsThroughRunner:
    def test_hash_records_kernel_steps(self, tiny_workload):
        m = run_cell(tiny_workload, "hash")
        assert m.status == "ok"
        assert m.stats["kernel_steps"] > 0

    @needs_fork
    def test_isolated_real_row_matches_in_process_statuses(self):
        workload = table1_workload(2)
        methods = ["sis", "smv", "match", "hash"]
        in_proc = run_row(workload, methods, time_budget=30)
        isolated = run_row(workload, methods, time_budget=30, jobs=4, isolate=True)
        assert {m: c.status for m, c in in_proc.cells.items()} == \
               {m: c.status for m, c in isolated.cells.items()}
        assert in_proc.cells["hash"].stats["kernel_steps"] == \
               isolated.cells["hash"].stats["kernel_steps"]
