"""Tests for the named workload-scenario registry."""

import pytest

from repro.eval.scenarios import (
    available_scenarios,
    build_scenario,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.eval.workloads import Workload, make_workload

BUILTIN_SCENARIOS = ["counters", "figure2", "iwls", "multiplier", "random_seq"]


class TestRegistryContents:
    def test_all_builtin_scenarios_registered(self):
        assert set(BUILTIN_SCENARIOS) <= set(available_scenarios())

    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="figure2"):
            get_scenario("nope")

    def test_scenarios_declare_default_methods(self):
        assert "hash" in get_scenario("figure2").default_methods
        assert "eijk" in get_scenario("iwls").default_methods


class TestBuilding:
    def test_figure2_widths_param(self):
        workloads = build_scenario("figure2", widths=[2, 4])
        assert [w.name for w in workloads] == ["figure2 n=2", "figure2 n=4"]
        for w in workloads:
            assert isinstance(w, Workload)
            assert w.cut and w.retimed is not w.original

    def test_previously_orphaned_generators_are_first_class(self):
        counters = build_scenario("counters", widths=[2])
        assert {w.name for w in counters} == {"counter_2bit", "gray_2bit",
                                              "shift_2x1"}
        mult = build_scenario("multiplier", widths=[3])
        assert mult[0].name == "fracmul_3bit"
        assert mult[0].cut == ["shifter"]
        rand = build_scenario("random_seq", seeds=[7], n_flipflops=5, n_gates=24)
        assert rand[0].name.endswith("s7")

    def test_scalar_accepted_for_list_params(self):
        assert len(build_scenario("figure2", widths=2)) == 1
        assert len(build_scenario("multiplier", widths=3)) == 1

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError, match="does not accept"):
            build_scenario("figure2", depth=3)

    def test_deterministic_rebuild(self):
        first = build_scenario("random_seq", seeds=[1, 2])
        second = build_scenario("random_seq", seeds=[1, 2])
        assert [w.name for w in first] == [w.name for w in second]
        assert [w.cut for w in first] == [w.cut for w in second]


class TestRegistration:
    def test_register_is_a_one_site_change(self, fig2_small):
        @register_scenario("tmp-scenario", description="stub", widths=(2,))
        def stub(widths):
            return [make_workload(fig2_small.copy("tmp"), name="tmp")]

        try:
            assert "tmp-scenario" in available_scenarios()
            workloads = build_scenario("tmp-scenario")
            assert [w.name for w in workloads] == ["tmp"]
        finally:
            unregister_scenario("tmp-scenario")
        assert "tmp-scenario" not in available_scenarios()

    def test_duplicate_registration_rejected(self):
        register_scenario("tmp-dup", lambda: [])
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("tmp-dup", lambda: [])
            register_scenario("tmp-dup", lambda: [], replace=True)
        finally:
            unregister_scenario("tmp-dup")
