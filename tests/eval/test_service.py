"""Tests for the evaluation service (:mod:`repro.eval.service`).

Covers the persistent :class:`WorkerPool` (budget kills recycle the worker
without wedging the pool; crashed workers are respawned), the in-process
daemon (served over an AF_UNIX socket) and the three-mode byte-identity
guarantee: serial, ``--jobs N`` and ``--via-daemon`` runs render the exact
same table.
"""

import os
import threading
import time

import pytest

from repro.eval.cache import ResultCache
from repro.eval.runner import CellSpec, render_table, run_cells, run_rows
from repro.eval.service import (
    DaemonClient,
    WorkerPool,
    serve,
)
from repro.eval.workloads import table1_workload
from repro.verification.common import VerificationResult
from repro.verification.registry import register_checker, unregister_checker

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"),
    reason="stub backends only reach isolated workers via fork",
)

pytestmark = needs_fork


# ---------------------------------------------------------------------------
# Deterministic stub backends (registered for this module only)
# ---------------------------------------------------------------------------

def _stub_ok(original, retimed, time_budget=None):
    return VerificationResult(method="svc-ok", status="equivalent",
                              seconds=1.23, detail="stubbed",
                              stats={"kernel_steps": 42.0})


def _stub_coop_timeout(original, retimed, time_budget=None):
    return VerificationResult(method="svc-to", status="timeout",
                              seconds=float(time_budget or 0.0),
                              detail="cooperative budget check fired")


def _stub_sleep(original, retimed, time_budget=None):
    time.sleep(300)  # never polls any budget


def _stub_die(original, retimed, time_budget=None):
    os._exit(3)  # simulates a segfaulting / OOM-killed worker


def _stub_crash_once(original, retimed, time_budget=None):
    """Crashes the first worker that runs it, succeeds on the retry.

    Cross-process state lives in a marker file named by the
    ``REPRO_TEST_CRASH_ONCE`` env var (workers inherit it at fork time).
    """
    marker = os.environ["REPRO_TEST_CRASH_ONCE"]
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return VerificationResult(method="svc-flaky", status="equivalent",
                                  seconds=0.5, detail="survived the retry")
    os.close(fd)
    os._exit(7)


_STUBS = {
    "svc-ok": _stub_ok,
    "svc-to": _stub_coop_timeout,
    "svc-sleep": _stub_sleep,
    "svc-die": _stub_die,
    "svc-flaky": _stub_crash_once,
}


@pytest.fixture(scope="module", autouse=True)
def stub_backends():
    for name, fn in _STUBS.items():
        register_checker(name, fn, accepts=("time_budget",), replace=True)
    yield
    for name in _STUBS:
        unregister_checker(name)


@pytest.fixture(scope="module")
def tiny_workload():
    return table1_workload(1)


def _specs(workload, methods, budget=60.0):
    return [CellSpec(workload, m, time_budget=budget) for m in methods]


# ---------------------------------------------------------------------------
# WorkerPool robustness
# ---------------------------------------------------------------------------

class TestWorkerPool:
    def test_runs_cells_and_counts_them(self, tiny_workload):
        with WorkerPool(2) as pool:
            results = pool.run(
                list(enumerate(_specs(tiny_workload, ["svc-ok", "svc-ok"]))))
            assert {m.status for m in results.values()} == {"ok"}
            assert pool.cells_run == 2
            assert pool.recycled == 0

    def test_budget_kill_recycles_and_pool_survives(self, tiny_workload):
        """An over-budget cell degrades to the dash without wedging the pool:
        the worker is killed and respawned, and the *same* pool then runs the
        next cell successfully."""
        with WorkerPool(1, grace=0.5) as pool:
            pids_before = pool.worker_pids()
            results = pool.run(
                [(0, CellSpec(tiny_workload, "svc-sleep", time_budget=0.3))])
            killed = results[0]
            assert killed.status == "timeout"
            assert killed.render() == "-"
            assert "wall-clock" in killed.detail
            assert pool.recycled == 1
            assert pool.retries == 0  # the dash is deterministic: no retry
            assert pool.worker_pids() != pids_before
            again = pool.run(
                [(0, CellSpec(tiny_workload, "svc-ok", time_budget=60.0))])
            assert again[0].status == "ok"
            assert again[0].seconds == 1.23

    def test_deterministic_crasher_fails_after_one_retry(self, tiny_workload):
        """A cell that always kills its worker is retried exactly once on a
        fresh worker, then recorded as ``failed`` — the pool never wedges."""
        with WorkerPool(1, retry_backoff=0.01) as pool:
            results = pool.run(
                [(0, CellSpec(tiny_workload, "svc-die", time_budget=60.0))])
            assert results[0].status == "failed"
            assert "exit code 3" in results[0].detail
            assert "retried once" in results[0].detail
            assert results[0].stats["retries"] == 1.0
            assert pool.recycled == 2  # both crashes respawned a worker
            assert pool.retries == 1
            again = pool.run(
                [(0, CellSpec(tiny_workload, "svc-ok", time_budget=60.0))])
            assert again[0].status == "ok"

    def test_crash_once_cell_succeeds_on_retry(self, tiny_workload, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE", str(tmp_path / "marker"))
        with WorkerPool(1, retry_backoff=0.01) as pool:
            results = pool.run(
                [(0, CellSpec(tiny_workload, "svc-flaky", time_budget=60.0))])
            assert results[0].status == "ok"
            assert results[0].detail == "survived the retry"
            assert results[0].stats["retries"] == 1.0
            assert pool.recycled == 1
            assert pool.retries == 1

    def test_retry_lands_on_an_idle_worker_in_wide_pools(self, tiny_workload,
                                                         tmp_path,
                                                         monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE", str(tmp_path / "marker"))
        specs = [(0, CellSpec(tiny_workload, "svc-flaky", time_budget=60.0)),
                 (1, CellSpec(tiny_workload, "svc-ok", time_budget=60.0)),
                 (2, CellSpec(tiny_workload, "svc-ok", time_budget=60.0))]
        with WorkerPool(2, retry_backoff=0.01) as pool:
            results = pool.run(specs)
            assert [results[i].status for i in range(3)] == ["ok"] * 3
            assert results[0].stats["retries"] == 1.0
            assert "retries" not in results[1].stats
            assert pool.retries == 1

    def test_mixed_batch_keeps_indices(self, tiny_workload):
        specs = _specs(tiny_workload, ["svc-ok", "svc-to", "svc-ok"])
        with WorkerPool(2) as pool:
            results = pool.run(list(enumerate(specs)))
        assert [results[i].status for i in range(3)] == ["ok", "timeout", "ok"]


# ---------------------------------------------------------------------------
# Daemon + client
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on a per-test socket, with its own result cache."""
    socket_path = str(tmp_path / "repro.sock")
    cache = ResultCache(directory=str(tmp_path / "cache"))
    ready = threading.Event()
    thread = threading.Thread(
        target=serve,
        kwargs=dict(socket_path=socket_path, jobs=2, cache=cache,
                    log=lambda msg: None, ready=ready),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10.0), "daemon failed to start"
    client = DaemonClient(socket_path)
    yield client
    try:
        client.shutdown()
    except (OSError, EOFError):
        pass
    thread.join(10.0)
    assert not thread.is_alive(), "daemon failed to shut down"


class TestDaemon:
    def test_ping_reports_pool_shape(self, daemon):
        info = daemon.ping()
        assert info["pid"] == os.getpid()
        assert info["jobs"] == 2
        assert info["cells_run"] == 0
        assert info["retries"] == 0

    def test_cold_then_warm_run(self, daemon, tiny_workload):
        specs = _specs(tiny_workload, ["svc-ok", "svc-to"], budget=5.0)
        cold = daemon.run_cells(specs)
        assert daemon.stats == {"cache_hits": 0, "cache_misses": 2}
        warm = daemon.run_cells(specs)
        assert daemon.stats == {"cache_hits": 2, "cache_misses": 2}
        assert warm == cold
        assert daemon.ping()["cells_run"] == 2  # warm run never hit the pool

    def test_results_stream_in_submission_order(self, daemon, tiny_workload):
        events = []
        daemon.run_cells(_specs(tiny_workload, ["svc-ok", "svc-to", "svc-ok"],
                                budget=5.0),
                         on_result=lambda i, m: events.append(i))
        assert sorted(events) == [0, 1, 2]

    def test_unknown_method_raises_without_wedging(self, daemon, tiny_workload):
        with pytest.raises(RuntimeError, match="unknown verification backend"):
            daemon.run_cells([CellSpec(tiny_workload, "no-such", time_budget=5.0)])
        # daemon still serves afterwards
        out = daemon.run_cells(_specs(tiny_workload, ["svc-ok"]))
        assert out[0].status == "ok"

    def test_budget_kill_inside_daemon_recycles(self, daemon, tiny_workload):
        out = daemon.run_cells(
            [CellSpec(tiny_workload, "svc-sleep", time_budget=0.3)])
        assert out[0].status == "timeout"
        assert daemon.ping()["recycled"] == 1
        out = daemon.run_cells(_specs(tiny_workload, ["svc-ok"]))
        assert out[0].status == "ok"

    def test_cache_stats_and_clear_ops(self, daemon, tiny_workload):
        daemon.run_cells(_specs(tiny_workload, ["svc-ok"], budget=5.0))
        stats = daemon.cache_stats()
        assert stats["stores"] == 1
        assert daemon.cache_clear() == 1
        assert daemon.cache_stats()["disk_entries"] == 0

    def test_stale_socket_refused_while_daemon_alive(self, daemon, tmp_path):
        with pytest.raises(RuntimeError, match="already"):
            serve(socket_path=daemon.socket_path, jobs=1,
                  cache=ResultCache(directory=str(tmp_path / "c2")),
                  log=lambda msg: None)


# ---------------------------------------------------------------------------
# The three-mode byte-identity guarantee
# ---------------------------------------------------------------------------

class TestThreeModeParity:
    def test_serial_jobs_and_daemon_render_identically(self, daemon):
        workloads = [table1_workload(1), table1_workload(2)]
        methods = ["svc-ok", "svc-to"]

        def _render(**kwargs):
            rows = run_rows(workloads, methods, time_budget=5.0, **kwargs)
            return render_table(rows, methods, title="parity")

        serial = _render()
        parallel = _render(jobs=2, isolate=True)
        via_daemon_cold = _render(client=daemon)
        via_daemon_warm = _render(client=daemon)
        assert serial == parallel == via_daemon_cold == via_daemon_warm
        assert daemon.stats["cache_hits"] == 4  # the warm pass was all hits

    def test_run_cells_client_path_matches_serial(self, daemon, tiny_workload):
        specs = _specs(tiny_workload, ["svc-ok", "svc-to"], budget=5.0)
        assert run_cells(specs, client=daemon) == run_cells(specs)


# ---------------------------------------------------------------------------
# DaemonClient connection resilience
# ---------------------------------------------------------------------------

class TestClientConnectRetry:
    """Transient refused/reset connections back off and retry; an absent
    socket file fails fast (a stopped daemon should not cost 4 backoffs)."""

    def _patch(self, monkeypatch, failures, exc_type):
        import repro.eval.service as service

        attempts = []
        sleeps = []

        def fake_client(path, family=None, authkey=None):
            attempts.append(path)
            if len(attempts) <= failures:
                raise exc_type("transient")
            return "connected"

        monkeypatch.setattr(service.mp_connection, "Client", fake_client)
        monkeypatch.setattr(service.time, "sleep",
                            lambda s: sleeps.append(s))
        return attempts, sleeps

    def test_refused_connection_is_retried_with_backoff(self, monkeypatch):
        attempts, sleeps = self._patch(monkeypatch, failures=2,
                                       exc_type=ConnectionRefusedError)
        client = DaemonClient("/tmp/nope.sock")
        assert client._connect() == "connected"
        assert len(attempts) == 3
        assert sleeps == [DaemonClient.CONNECT_BACKOFF,
                          DaemonClient.CONNECT_BACKOFF * 2]

    def test_persistent_refusal_raises_after_budget(self, monkeypatch):
        attempts, sleeps = self._patch(monkeypatch, failures=99,
                                       exc_type=ConnectionResetError)
        client = DaemonClient("/tmp/nope.sock")
        with pytest.raises(ConnectionResetError):
            client._connect()
        assert len(attempts) == DaemonClient.CONNECT_RETRIES + 1
        assert len(sleeps) == DaemonClient.CONNECT_RETRIES

    def test_absent_socket_fails_fast(self, monkeypatch):
        attempts, sleeps = self._patch(monkeypatch, failures=99,
                                       exc_type=FileNotFoundError)
        client = DaemonClient("/tmp/nope.sock")
        with pytest.raises(FileNotFoundError):
            client._connect()
        assert len(attempts) == 1
        assert sleeps == []
