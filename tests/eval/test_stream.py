"""Tests for streaming cell output (`--stream` / `run_cells(on_result=...)`).

The contract: the callback fires once per cell the moment it completes
(completion order under parallel isolation, submission order serially),
while the returned measurement list — and therefore the final table
render — is byte-identical with and without streaming.
"""

from repro.cli import main
from repro.eval import runner, scenarios
from repro.eval.runner import CellSpec, run_cells


def _specs(n_widths=2):
    workloads = scenarios.build_scenario("strash", widths=list(range(2, 2 + n_widths)))
    return [
        CellSpec(w, m, time_budget=30.0)
        for w in workloads
        for m in ("taut", "sat")
    ]


class TestOnResultCallback:
    def test_serial_callback_order_and_identity(self):
        specs = _specs()
        events = []
        results = run_cells(
            specs, on_result=lambda i, m: events.append((i, m.workload, m.method))
        )
        assert [e[0] for e in events] == list(range(len(specs)))
        assert [(e[1], e[2]) for e in events] == [
            (s.workload.name, s.method) for s in specs
        ]
        plain = run_cells(specs)
        assert [(m.workload, m.method, m.status) for m in results] == \
            [(m.workload, m.method, m.status) for m in plain]

    def test_parallel_callback_covers_every_cell(self):
        specs = _specs()
        events = []
        results = run_cells(
            specs, jobs=2, isolate=True,
            on_result=lambda i, m: events.append(i),
        )
        assert sorted(events) == list(range(len(specs)))
        assert all(m.status == "ok" for m in results)

    def test_render_identical_with_and_without_streaming(self):
        workloads = scenarios.build_scenario("strash", widths=2)
        methods = ["taut", "sat", "fraig"]
        rows_plain = runner.run_rows(workloads, methods)
        rows_stream = runner.run_rows(
            workloads, methods, on_result=lambda i, m: None
        )

        def strip_times(rows):
            return [
                [(m, row.cells[m].status) for m in methods] for row in rows
            ]

        assert strip_times(rows_plain) == strip_times(rows_stream)


class TestCliStreamFlag:
    def test_stream_lines_precede_identical_table(self, capsys):
        args = ["run", "--scenario", "strash", "--param", "widths=2",
                "--methods", "taut,sat", "--no-isolate"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        stream_lines = [l for l in streamed.splitlines() if l.startswith("[cell ")]
        assert len(stream_lines) == 4  # 2 workloads x 2 methods
        assert "strash figure2_2bit / sat" in "\n".join(stream_lines)
        # the final render is byte-identical: drop the stream lines and the
        # wall-clock digits, which vary run to run
        import re

        def table_of(text):
            kept = [l for l in text.splitlines() if not l.startswith("[cell ")]
            return re.sub(r"\d+\.\d\d", "T", "\n".join(kept))

        assert table_of(streamed) == table_of(plain)

    def test_stream_with_jobs(self, capsys):
        args = ["run", "--scenario", "strash", "--param", "widths=2",
                "--methods", "taut,sat", "--jobs", "2", "--stream",
                "--budget", "30"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if l.startswith("[cell ")]) == 4
        assert "Scenario 'strash'" in out


class TestStrashScenario:
    def test_registered_and_equivalent(self):
        scenario = scenarios.get_scenario("strash")
        assert set(scenario.default_methods) == {"taut", "sat", "fraig"}
        workloads = scenarios.build_scenario("strash", widths=3)
        assert len(workloads) == 2  # figure2 + counter
        for w in workloads:
            for method in scenario.default_methods:
                result = runner.run_cell(w, method)
                assert result.status == "ok", (w.name, method, result.detail)
