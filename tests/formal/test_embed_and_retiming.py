"""Tests for the HASH core: embedding, the four-step procedure, failure modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.semantics import run_automaton
from repro.circuits.bitblast import bitblast
from repro.circuits.generators import (
    counter,
    figure2,
    figure2_cut,
    figure2_false_cut,
    fractional_multiplier,
    gray_counter,
    random_sequential_circuit,
    shift_register,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import outputs_equal, random_input_sequence, simulate
from repro.formal import (
    EmbeddingError,
    FormalSynthesisError,
    embed_netlist,
    formal_forward_retiming,
)
from repro.formal.embed import input_values_to_ground
from repro.retiming.cuts import maximal_forward_cut


def _term_outputs_match_simulation(netlist, term, cycles=25, seed=0):
    """Run the automaton term and the cycle simulator on the same stimuli."""
    embedded = embed_netlist(netlist)
    seq = random_input_sequence(netlist, cycles, seed=seed)
    trace = simulate(netlist, seq)
    outs = run_automaton(term, [input_values_to_ground(embedded, v) for v in seq])
    names = list(netlist.outputs)
    for value, expected in zip(outs, trace.outputs):
        if len(names) == 1:
            got = {names[0]: int(value)}
        else:
            got = {name: int(v) for name, v in zip(names, value)}
        if got != expected:
            return False
    return True


class TestEmbedding:
    @pytest.mark.parametrize("maker,kwargs", [
        (figure2, {"n": 4}),
        (counter, {"n": 5}),
        (fractional_multiplier, {"n": 3}),
        (shift_register, {"n_stages": 3, "width": 2}),
    ])
    def test_embedding_matches_simulation(self, maker, kwargs):
        netlist = maker(**kwargs)
        embedded = embed_netlist(netlist)
        assert _term_outputs_match_simulation(netlist, embedded.term)

    def test_bit_level_embedding_matches_simulation(self):
        gate = bitblast(figure2(2)).netlist
        embedded = embed_netlist(gate)
        assert _term_outputs_match_simulation(gate, embedded.term, cycles=15)

    def test_embedding_requires_registers(self):
        nl = Netlist("comb")
        nl.add_input("a", 2)
        nl.add_cell("n", "NOT", ["a"], "y")
        nl.add_output("y", 2)
        with pytest.raises(EmbeddingError):
            embed_netlist(nl)

    def test_embedding_requires_inputs(self):
        with pytest.raises(EmbeddingError):
            embed_netlist(gray_counter(3))

    def test_register_order_respected(self):
        netlist = figure2(3)
        embedded = embed_netlist(netlist, register_order=["D1", "D0"])
        assert embedded.register_order == ["D1", "D0"]
        with pytest.raises(EmbeddingError):
            embed_netlist(netlist, register_order=["D1"])

    def test_step_term_is_closed(self):
        embedded = embed_netlist(figure2(3))
        assert not embedded.step.free_vars()
        assert not embedded.init.free_vars()


class TestFormalRetiming:
    def test_figure2_theorem(self):
        netlist = figure2(5)
        result = formal_forward_retiming(netlist, figure2_cut())
        assert result.theorem.is_equation()
        assert not result.theorem.hyps
        assert result.theorem.lhs == result.original.term
        assert result.new_init_value == (1, 0)
        # the derived description behaves like the original circuit
        assert _term_outputs_match_simulation(netlist, result.retimed_term)

    def test_retimed_netlist_cross_check(self):
        netlist = figure2(4)
        result = formal_forward_retiming(netlist, figure2_cut())
        assert outputs_equal(netlist, result.retimed_netlist, cycles=150)

    @pytest.mark.parametrize("maker,kwargs,cut", [
        (counter, {"n": 6}, None),
        (fractional_multiplier, {"n": 3}, ["shifter"]),
        (fractional_multiplier, {"n": 3}, None),
        (shift_register, {"n_stages": 2, "width": 3}, None),
    ])
    def test_various_circuits(self, maker, kwargs, cut):
        netlist = maker(**kwargs)
        chosen = cut if cut is not None else maximal_forward_cut(netlist)
        if not chosen:
            pytest.skip("nothing to retime")
        result = formal_forward_retiming(netlist, chosen)
        assert result.theorem.is_equation()
        assert outputs_equal(netlist, result.retimed_netlist, cycles=120, seed=1)
        assert _term_outputs_match_simulation(netlist, result.retimed_term, cycles=20)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits(self, seed):
        netlist = random_sequential_circuit(3, 5, 25, seed=seed)
        cut = maximal_forward_cut(netlist)
        if not cut:
            pytest.skip("no retimable cells")
        result = formal_forward_retiming(netlist, cut)
        assert result.theorem.is_equation()
        assert outputs_equal(netlist, result.retimed_netlist, cycles=100, seed=seed)

    def test_stats_present(self):
        result = formal_forward_retiming(figure2(4), figure2_cut())
        for key in ("embed_seconds", "split_seconds", "apply_theorem_seconds",
                    "join_seconds", "init_eval_seconds", "total_seconds",
                    "inference_steps", "proof_size"):
            assert key in result.stats
        assert result.stats["proof_size"] > 100

    def test_bit_level_retiming(self):
        gate = bitblast(figure2(2)).netlist
        cut = maximal_forward_cut(gate)
        result = formal_forward_retiming(gate, cut)
        assert result.theorem.is_equation()
        assert outputs_equal(gate, result.retimed_netlist, cycles=60)

    @given(st.integers(2, 12))
    @settings(max_examples=8, deadline=None)
    def test_property_new_init_is_one_for_any_width(self, width):
        result = formal_forward_retiming(figure2(width), figure2_cut())
        assert result.new_init_value == (1, 0)


class TestFaultyHeuristics:
    def test_false_cut_raises(self):
        with pytest.raises(FormalSynthesisError):
            formal_forward_retiming(figure2(4), figure2_false_cut())

    def test_empty_cut_raises(self):
        with pytest.raises(FormalSynthesisError):
            formal_forward_retiming(figure2(4), [])

    def test_unknown_cell_raises(self):
        with pytest.raises(FormalSynthesisError):
            formal_forward_retiming(figure2(4), ["no_such_cell"])

    def test_constant_cell_raises(self):
        netlist = fractional_multiplier(3)
        # PIPE feeds the shifter; a CONST cell has no inputs and cannot be cut
        netlist.add_cell("konst", "CONST", [], "kn", params={"value": 1, "width": 3})
        netlist.add_cell("use", "OR", ["kn", "acc"] if "acc" in netlist.nets else ["kn", "pipe"], "used")
        netlist.mark_output("used")
        with pytest.raises(FormalSynthesisError):
            formal_forward_retiming(netlist, ["konst"])

    def test_partially_registered_cell_raises(self):
        # a cell reading one register and one primary input is a false cut
        netlist = fractional_multiplier(3)
        with pytest.raises(FormalSynthesisError):
            formal_forward_retiming(netlist, ["xreg_mux"])

    def test_no_theorem_leaks_on_failure(self):
        from repro.logic.kernel import inference_steps

        netlist = figure2(4)
        try:
            formal_forward_retiming(netlist, figure2_false_cut())
        except FormalSynthesisError:
            pass
        # the failure happened before any retiming-theorem instantiation:
        # re-running the legal cut still works and produces a fresh theorem
        result = formal_forward_retiming(netlist, figure2_cut())
        assert result.theorem.is_equation()
        assert inference_steps() > 0
