"""Tests for step composition (HASH core) and synthesis certificates."""

import pytest

from repro.circuits.generators import figure2, figure2_cut, fractional_multiplier
from repro.circuits.generators.multiplier import multiplier_retiming_cut
from repro.circuits.simulate import outputs_equal
from repro.formal import (
    FormalSynthesisError,
    axioms_used,
    bridge_retiming_result,
    bridge_to_netlist_step,
    certificate_for,
    compose,
    compound_retiming_flow,
    retimed_register_order,
    retiming_step,
    rule_histogram,
    tidy_step,
)


class TestSteps:
    def test_retiming_step_wraps_result(self):
        step = retiming_step(figure2(3), figure2_cut())
        assert step.theorem.is_equation()
        assert step.before == step.theorem.lhs
        assert step.after == step.theorem.rhs
        assert "result" in step.artifacts

    def test_tidy_step_reduces_or_preserves(self):
        result = retiming_step(figure2(3), figure2_cut()).artifacts["result"]
        tidied = tidy_step(result.retimed_term)
        assert tidied.theorem.is_equation()
        assert tidied.after.size() <= result.retimed_term.size()

    def test_bridge_step_accepts_matching_netlist(self):
        result = retiming_step(figure2(3), figure2_cut()).artifacts["result"]
        bridge = bridge_retiming_result(result)
        assert bridge.theorem.is_equation()

    def test_retimed_register_order(self):
        result = retiming_step(figure2(3), figure2_cut()).artifacts["result"]
        order = retimed_register_order(result)
        assert set(order) == set(result.retimed_netlist.registers)
        # the moved register (driving the incrementer output net) comes first
        first = result.retimed_netlist.registers[order[0]]
        assert first.output == "inc_out"

    def test_bridge_step_rejects_wrong_netlist(self):
        result = retiming_step(figure2(3), figure2_cut()).artifacts["result"]
        with pytest.raises(FormalSynthesisError):
            bridge_to_netlist_step(result.retimed_term, figure2(3))

    def test_bridge_step_size_guard(self):
        result = retiming_step(figure2(3), figure2_cut()).artifacts["result"]
        with pytest.raises(FormalSynthesisError):
            bridge_to_netlist_step(result.retimed_term, result.retimed_netlist,
                                   max_term_size=5,
                                   register_order=retimed_register_order(result))


class TestComposition:
    def test_compose_two_retimings(self):
        circuit = fractional_multiplier(3)
        flow = compound_retiming_flow(circuit, [multiplier_retiming_cut(), ["mult"]])
        assert flow.theorem.is_equation()
        assert not flow.theorem.hyps
        # the compound theorem starts at the embedding of the original circuit
        from repro.formal import embed_netlist

        assert flow.theorem.lhs == embed_netlist(circuit).term

    def test_compose_rejects_mismatched_steps(self):
        step_a = retiming_step(figure2(3), figure2_cut())
        step_b = retiming_step(figure2(4), figure2_cut())
        with pytest.raises(FormalSynthesisError):
            compose([step_a, step_b])

    def test_compose_requires_steps(self):
        with pytest.raises(FormalSynthesisError):
            compose([])

    def test_flow_preserves_behaviour(self):
        circuit = fractional_multiplier(3)
        flow = compound_retiming_flow(circuit, [multiplier_retiming_cut(), ["mult"]])
        # the flow's final netlist is carried by the last retiming step
        last = [s for s in flow.detail.split(" ; ") if s.startswith("retiming")][-1]
        assert last  # descriptive only; behavioural check below
        # recover the final netlist from a fresh run for comparison
        from repro.retiming.apply import apply_forward_retiming

        intermediate = apply_forward_retiming(circuit, multiplier_retiming_cut())
        final = apply_forward_retiming(intermediate, ["mult"])
        assert outputs_equal(circuit, final, cycles=150)


class TestCertificates:
    def test_certificate_contents(self):
        step = retiming_step(figure2(3), figure2_cut())
        cert = certificate_for(step.theorem, seconds=step.seconds, cut=step.name)
        assert "RETIMING_THM" in " ".join(cert.axioms)
        assert cert.proof_size > 0
        assert "TRANS" in cert.rule_histogram
        text = cert.render()
        assert "Formal synthesis certificate" in text
        assert "trusted base" in text.lower() or "Trusted base" in text

    def test_rule_histogram_counts(self):
        step = retiming_step(figure2(2), figure2_cut())
        hist = rule_histogram(step.theorem)
        assert sum(hist.values()) > 100
        assert set(hist) & {"REFL", "TRANS", "MK_COMB"}

    def test_axioms_used_subset_of_trusted_base(self):
        step = retiming_step(figure2(2), figure2_cut())
        used = axioms_used(step.theorem)
        assert any("RETIMING_THM" in a for a in used)
        assert any("FST_PAIR" in a for a in used)
