"""Integration tests: the whole flow, cross-checked between all subsystems."""

import pytest

from repro.circuits.generators import figure2, figure2_cut, fractional_multiplier
from repro.circuits.simulate import outputs_equal
from repro.eval import table1, table2
from repro.eval.runner import run_hash, run_row
from repro.eval.workloads import make_workload, table1_workload, table2_workloads
from repro.formal import certificate_for, formal_forward_retiming
from repro.retiming.cuts import maximal_forward_cut
from repro.verification import fsm_compare, model_checking, retiming_verify, van_eijk


class TestFormalResultAcceptedByAllVerifiers:
    """The output of the formal step is accepted by every post-synthesis verifier.

    This is the strongest cross-validation in the repository: the HASH result
    (derived inside the kernel) and the conventional result are checked
    against each other by four independent verification engines built on a
    different substrate (BDDs / structural matching).
    """

    @pytest.fixture(scope="class")
    def flow(self):
        original = figure2(3)
        result = formal_forward_retiming(original, figure2_cut())
        return original, result

    def test_smv_accepts(self, flow):
        original, result = flow
        assert model_checking.check_equivalence(
            original, result.retimed_netlist, time_budget=60).status == "equivalent"

    def test_sis_accepts(self, flow):
        original, result = flow
        assert fsm_compare.check_equivalence(
            original, result.retimed_netlist, time_budget=60).status == "equivalent"

    def test_van_eijk_accepts(self, flow):
        original, result = flow
        assert van_eijk.check_equivalence(
            original, result.retimed_netlist, time_budget=60).status == "equivalent"

    def test_structural_matcher_accepts(self, flow):
        original, result = flow
        assert retiming_verify.check_equivalence(
            original, result.retimed_netlist).status == "equivalent"

    def test_certificate_audit(self, flow):
        _, result = flow
        cert = certificate_for(result.theorem)
        assert cert.proof_size == result.stats["proof_size"]
        assert any("RETIMING_THM" in a for a in cert.axioms)


class TestHarness:
    def test_table1_single_row(self):
        workload = table1_workload(2)
        row = run_row(workload, ["sis", "smv", "hash"], time_budget=30)
        assert row.cells["hash"].status == "ok"
        assert row.cells["sis"].status == "ok"
        assert row.cells["smv"].status == "ok"

    def test_table1_render(self):
        rows = table1.run_table1(widths=[1, 2], time_budget=20)
        text = table1.render(rows)
        assert "Table I" in text and "HASH" in text

    def test_table2_scaled_row(self):
        workloads = table2_workloads(scale=0.06, names=["s344"])
        row = run_row(workloads[0], ["eijk", "sis", "hash"], time_budget=25)
        assert row.cells["hash"].status == "ok"

    def test_table2_render(self):
        rows = table2.run_table2(scale=0.05, names=["s344", "s382"], time_budget=20)
        text = table2.render(rows)
        assert "Table II" in text and "EIJK" in text

    def test_hash_measurement_includes_inference_count(self):
        workload = make_workload(figure2(4), cut=figure2_cut())
        m = run_hash(workload)
        assert m.status == "ok" and "inference" in m.detail

    def test_timeouts_render_as_dash(self):
        workload = table1_workload(12)
        row = run_row(workload, ["smv"], time_budget=0.2)
        assert row.cells["smv"].render() == "-"


class TestAblations:
    def test_cut_sweep_runs(self):
        from repro.eval.ablations import run_cut_sweep

        points = run_cut_sweep(figure2(6))
        assert len(points) >= 1
        assert all(p.seconds >= 0 for p in points)

    def test_rtl_vs_gate_runs(self):
        from repro.eval.ablations import run_rtl_vs_gate

        results = run_rtl_vs_gate(4)
        levels = {r.level for r in results}
        assert levels == {"rtl", "gate"}


class TestMultiplierFamily:
    """The Table-II multiplier family: HASH handles what the verifiers cannot."""

    def test_hash_scales_to_wider_multipliers(self):
        for width in (3, 6):
            workload = make_workload(fractional_multiplier(width),
                                     cut=["shifter"])
            assert run_hash(workload).status == "ok"

    def test_verifier_budget_exhausted_on_wide_multiplier(self):
        workload = make_workload(fractional_multiplier(10), cut=["shifter"])
        result = model_checking.check_equivalence(
            workload.original, workload.retimed, time_budget=1.0, node_budget=200_000
        )
        assert result.status == "timeout"
        # ... while HASH still completes on the same instance
        assert run_hash(workload).status == "ok"


class TestConventionalVsFormalAgreement:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_same_initial_values(self, width):
        original = figure2(width)
        result = formal_forward_retiming(original, figure2_cut())
        conventional = result.retimed_netlist
        formal_inits = result.new_init_value
        conventional_inits = tuple(
            conventional.registers[name].init for name in sorted(conventional.registers)
        )
        # both engines computed f(q) = 1 for the moved register
        assert 1 in conventional_inits
        assert formal_inits[0] == 1

    def test_behavioural_agreement_on_maximal_cut(self):
        original = fractional_multiplier(4)
        cut = maximal_forward_cut(original)
        result = formal_forward_retiming(original, cut)
        assert outputs_equal(original, result.retimed_netlist, cycles=200, seed=3)
