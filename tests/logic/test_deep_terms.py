"""Regression: deep gate chains must work at the default recursion limit.

The seed kernel represented terms as plain recursive objects, so equality,
hashing and substitution recursed over the whole structure and a bit-blasted
gate-level chain of a couple of thousand gates died with ``RecursionError``.
With hash-consing and explicit-stack traversals, depth is bounded only by
memory.  This test builds a >2000-gate chain, bit-blasts it, embeds it as a
logic term (one ``let`` binding per gate, so term depth tracks gate count)
and exercises the core operations without touching ``sys.setrecursionlimit``.
"""

import sys

from repro.circuits.bitblast import bitblast
from repro.circuits.netlist import Netlist
from repro.formal.embed import embed_netlist
from repro.logic.hol_types import bool_ty
from repro.logic.terms import Var, aconv, free_vars_set, var_subst

#: Chain length: each XOR level emits ~4 gates/lets, so 1100 levels put the
#: gate count comfortably above the 2000-gate target and the serial let
#: depth far beyond the default interpreter recursion limit (1000).
CHAIN = 1100


def chain_netlist(n: int = CHAIN) -> Netlist:
    """A 1-bit circuit with an ``n``-deep XOR chain between two registers.

    XOR lowers to an irredundant two-level AND/inverter structure, so the
    structurally-hashed AIG behind the bit-blaster cannot collapse the
    chain (a NOT chain would fold to a single inverted edge): both the
    gate count and the embedded term depth track ``n``.
    """
    nl = Netlist("deep_chain")
    nl.add_input("i")
    nl.add_net("r_out")
    nl.add_net("mix")
    nl.add_cell("mix", "XOR", ["i", "r_out"], "mix")
    prev = "mix"
    for k in range(n):
        net = f"n{k}"
        nl.add_net(net)
        nl.add_cell(f"g{k}", "XOR", [prev, "i"], net)
        prev = net
    nl.add_register("r", prev, "r_out")
    nl.add_output("y")
    nl.add_cell("ybuf", "BUF", [prev], "y")
    return nl


def test_deep_bitblasted_chain_at_default_recursion_limit():
    limit_before = sys.getrecursionlimit()

    # opt=False: the rewriter would (correctly) telescope the xor chain
    netlist = bitblast(chain_netlist(), opt=False).netlist
    assert netlist.num_gates() > 2000

    embedded = embed_netlist(netlist)
    term = embedded.term
    step = embedded.step
    # one let binding per (non-BUF) gate: the term really is deep
    assert term.size() > 2 * CHAIN

    # equality and hashing are O(1) identity operations
    rebuilt = embed_netlist(netlist).term
    assert rebuilt is term
    assert rebuilt == term
    assert hash(rebuilt) == hash(term)

    # alpha-conversion, free variables, substitution all succeed iteratively
    assert aconv(step, step)
    p = step.bvar
    assert free_vars_set(step) == frozenset()
    assert free_vars_set(step.body) == frozenset((p,))
    q = Var("q_fresh", p.ty)
    renamed = var_subst({p: q}, step.body)
    assert q in free_vars_set(renamed)
    assert p not in free_vars_set(renamed)
    # substituting back round-trips to the identical interned term
    assert var_subst({q: p}, renamed) is step.body

    # the pretty printer walks the term iteratively as well
    rendered = str(step)
    assert rendered.count("let ") > 2000

    # no traversal is allowed to touch the recursion limit
    assert sys.getrecursionlimit() == limit_before


def test_deep_type_and_term_equality_scales_linearly():
    # identity comparison on a deep structure is instant even when repeated
    netlist = bitblast(chain_netlist(CHAIN // 2)).netlist
    a = embed_netlist(netlist).term
    b = embed_netlist(netlist).term
    for _ in range(10_000):
        assert a == b  # pointer comparison, not a structural walk


def test_no_recursion_limit_bandaids_in_src():
    """The acceptance criterion: no ``sys.setrecursionlimit`` in ``src/``."""
    import pathlib

    import repro

    src_root = pathlib.Path(repro.__file__).parent
    offenders = [
        p
        for p in src_root.rglob("*.py")
        if "setrecursionlimit" in p.read_text(encoding="utf-8")
    ]
    assert offenders == []


def test_deep_chain_is_boolean_typed():
    netlist = bitblast(chain_netlist(64)).netlist
    embedded = embed_netlist(netlist)
    assert embedded.state_layout.types == [bool_ty]
    assert embedded.step.ty.is_fun()