"""Invariants of the hash-consed (interned) kernel representation.

Structurally equal types and terms must be pointer-identical, the intern
tables must report cache hits for repeated construction, and interning must
be *observationally invisible* to the kernel: inference-step counts of a
derivation are the same whether the intern caches are cold or warm.
"""

from repro.logic.hol_types import (
    TyApp,
    TyVar,
    bool_ty,
    mk_fun,
    mk_fun_ty,
    mk_prod_ty,
    num_ty,
    type_intern_stats,
)
from repro.logic.kernel import REFL, TRANS, inference_steps
from repro.logic.terms import (
    Abs,
    Comb,
    Const,
    Var,
    aconv,
    mk_eq,
    mk_pair,
    term_intern_stats,
)


class TestTypeInterning:
    def test_mk_fun_is_identical(self):
        a, b = TyVar("a"), TyVar("b")
        assert mk_fun(a, b) is mk_fun(a, b)
        assert mk_fun_ty(a, b) is mk_fun(a, b)

    def test_tyvar_and_tyapp_identity(self):
        assert TyVar("a") is TyVar("a")
        assert TyApp("bool") is bool_ty
        assert mk_prod_ty(bool_ty, num_ty) is mk_prod_ty(bool_ty, num_ty)

    def test_distinct_types_are_distinct(self):
        assert mk_fun_ty(bool_ty, num_ty) is not mk_fun_ty(num_ty, bool_ty)
        assert TyVar("a") is not TyVar("b")

    def test_hit_counter_increases(self):
        # hold a reference: intern tables are weak, unreferenced entries die
        keep = mk_fun_ty(bool_ty, num_ty)
        before = type_intern_stats()
        again = mk_fun_ty(bool_ty, num_ty)
        after = type_intern_stats()
        assert again is keep
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]


class TestTermInterning:
    def test_var_const_identity(self):
        assert Var("x", bool_ty) is Var("x", bool_ty)
        assert Const("T", bool_ty) is Const("T", bool_ty)
        # same name at a different type is a different object
        assert Var("x", bool_ty) is not Var("x", num_ty)

    def test_comb_abs_identity(self):
        x = Var("x", bool_ty)
        f = Var("f", mk_fun_ty(bool_ty, bool_ty))
        assert Comb(f, x) is Comb(f, x)
        assert Abs(x, Comb(f, x)) is Abs(x, Comb(f, x))
        assert mk_pair(x, x) is mk_pair(x, x)
        assert mk_eq(x, x) is mk_eq(x, x)

    def test_equality_is_identity(self):
        x = Var("x", bool_ty)
        t1 = mk_pair(x, x)
        t2 = mk_pair(x, x)
        assert t1 == t2 and t1 is t2
        assert hash(t1) == hash(t2)

    def test_hit_counter_increases(self):
        x = Var("x", bool_ty)
        keep = mk_pair(x, x)
        before = term_intern_stats()
        again = mk_pair(x, x)
        after = term_intern_stats()
        assert again is keep
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_aconv_fast_path(self):
        x, y = Var("x", bool_ty), Var("y", bool_ty)
        assert aconv(mk_pair(x, y), mk_pair(x, y))
        assert aconv(Abs(x, x), Abs(y, y))
        assert not aconv(Abs(x, y), Abs(y, y))


class TestInterningIsObservationallyInvisible:
    def _derive(self):
        """A small derivation; returns the number of kernel steps it takes."""
        x = Var("x", bool_ty)
        y = Var("y", mk_prod_ty(bool_ty, num_ty))
        before = inference_steps()
        th1 = REFL(mk_pair(x, y))
        th2 = REFL(mk_pair(x, y))
        TRANS(th1, th2)
        return inference_steps() - before

    def test_kernel_step_counts_unchanged_by_cache_state(self):
        # First run populates the intern tables (cold), the second run hits
        # them (warm); the kernel must count exactly the same inferences.
        cold = self._derive()
        warm = self._derive()
        assert cold == warm == 3

    def test_formal_retiming_step_counts_are_reproducible(self):
        from repro.circuits.generators import figure2
        from repro.formal import formal_forward_retiming
        from repro.retiming.cuts import maximal_forward_cut

        circuit = figure2(4)
        cut = maximal_forward_cut(circuit)
        # prime the once-per-theory setup (stdlib, the universal retiming
        # theorem) so the comparison isolates the effect of interning
        formal_forward_retiming(circuit, cut, cross_check=False)
        r1 = formal_forward_retiming(circuit, cut, cross_check=False)
        r2 = formal_forward_retiming(circuit, cut, cross_check=False)
        # Theory/kernel inference-step counts are unchanged by interning:
        # the warm-cache run performs exactly the same kernel inferences.
        assert r1.stats["inference_steps"] == r2.stats["inference_steps"]
        assert r1.stats["proof_size"] == r2.stats["proof_size"]
        # the second run is served mostly from the intern table
        assert r2.stats["term_intern_hits"] > 0
        assert r2.stats["term_intern_misses"] < r2.stats["term_intern_hits"]
        # and both produce the *identical* theorem object content
        assert r1.theorem.concl is r2.theorem.concl