"""Unit tests for the LCF kernel: rules, theory extension, soundness discipline."""

import pytest

from repro.logic.hol_types import TyVar, bool_ty, mk_fun_ty, num_ty
from repro.logic.kernel import (
    ABS,
    ALPHA,
    AP_TERM,
    AP_THM,
    ASSUME,
    BETA_CONV,
    COMPUTE,
    DEDUCT_ANTISYM,
    EQ_MP,
    INST,
    INST_TYPE,
    KernelError,
    MK_COMB,
    REFL,
    SYM,
    TRANS,
    Theorem,
    current_theory,
    inference_steps,
    new_axiom,
    new_computable_constant,
    new_definition,
    proof_size,
    trusted_base_report,
)
from repro.logic.ground import mk_numeral
from repro.logic.stdlib import ensure_stdlib, word_op
from repro.logic.terms import Abs, Comb, Const, Var, mk_eq
from repro.logic.theory import TheoryError

ensure_stdlib()

x = Var("x", num_ty)
y = Var("y", num_ty)
p = Var("p", bool_ty)
q = Var("q", bool_ty)
f = Var("f", mk_fun_ty(num_ty, num_ty))
g = Var("g", mk_fun_ty(num_ty, num_ty))


class TestSoundnessDiscipline:
    def test_theorem_cannot_be_constructed_directly(self):
        with pytest.raises(KernelError):
            Theorem(object(), frozenset(), mk_eq(x, x), "FORGED", ())

    def test_theorem_is_immutable(self):
        th = REFL(x)
        with pytest.raises(AttributeError):
            th._concl = mk_eq(x, y)

    def test_inference_steps_increase(self):
        before = inference_steps()
        REFL(x)
        assert inference_steps() > before

    def test_trusted_base_report_lists_axioms(self):
        report = trusted_base_report()
        assert "FST_PAIR" in report
        assert "LET" in report


class TestPrimitiveRules:
    def test_refl(self):
        th = REFL(x)
        assert th.concl == mk_eq(x, x)
        assert not th.hyps

    def test_alpha_rule(self):
        t1 = Abs(x, x)
        t2 = Abs(y, y)
        th = ALPHA(t1, t2)
        assert th.concl == mk_eq(t1, t2)

    def test_alpha_rejects_different_terms(self):
        with pytest.raises(KernelError):
            ALPHA(x, y)

    def test_trans(self):
        thm = TRANS(ASSUME(mk_eq(p, q)), ASSUME(mk_eq(q, p)))
        assert thm.concl == mk_eq(p, p)
        assert len(thm.hyps) == 2

    def test_trans_checks_middle(self):
        with pytest.raises(KernelError):
            TRANS(REFL(x), REFL(y))

    def test_mk_comb(self):
        th = MK_COMB(REFL(f), REFL(x))
        assert th.concl == mk_eq(Comb(f, x), Comb(f, x))

    def test_mk_comb_type_check(self):
        with pytest.raises(KernelError):
            MK_COMB(REFL(x), REFL(y))

    def test_ap_term_and_ap_thm(self):
        eq = ASSUME(mk_eq(x, y))
        assert AP_TERM(f, eq).concl == mk_eq(Comb(f, x), Comb(f, y))
        feq = ASSUME(mk_eq(f, g))
        assert AP_THM(feq, x).concl == mk_eq(Comb(f, x), Comb(g, x))

    def test_abs(self):
        eq = REFL(Comb(f, x))
        th = ABS(x, eq)
        assert th.concl == mk_eq(Abs(x, Comb(f, x)), Abs(x, Comb(f, x)))

    def test_abs_rejects_free_hypothesis_variable(self):
        hyp = ASSUME(mk_eq(x, y))
        with pytest.raises(KernelError):
            ABS(x, hyp)

    def test_beta_conv(self):
        redex = Comb(Abs(x, Comb(f, x)), y)
        th = BETA_CONV(redex)
        assert th.concl == mk_eq(redex, Comb(f, y))

    def test_beta_conv_requires_redex(self):
        with pytest.raises(KernelError):
            BETA_CONV(Comb(f, x))

    def test_assume_requires_bool(self):
        with pytest.raises(KernelError):
            ASSUME(x)
        th = ASSUME(p)
        assert th.hyps == frozenset({p}) and th.concl == p

    def test_eq_mp(self):
        eq = ASSUME(mk_eq(p, q))
        th = EQ_MP(eq, ASSUME(p))
        assert th.concl == q

    def test_eq_mp_mismatch(self):
        eq = ASSUME(mk_eq(p, q))
        with pytest.raises(KernelError):
            EQ_MP(eq, ASSUME(q))

    def test_deduct_antisym(self):
        th = DEDUCT_ANTISYM(ASSUME(p), ASSUME(q))
        assert th.concl == mk_eq(p, q)
        # each side keeps the other's conclusion removed from its hypotheses
        assert th.hyps == frozenset({p, q})

    def test_deduct_antisym_discharges(self):
        # {p} |- p and {p} |- p  gives  |- p = p with p discharged on both sides
        th = DEDUCT_ANTISYM(ASSUME(p), ASSUME(p))
        assert th.concl == mk_eq(p, p)
        assert th.hyps == frozenset()

    def test_inst(self):
        th = REFL(Comb(f, x))
        out = INST({x: y}, th)
        assert out.concl == mk_eq(Comb(f, y), Comb(f, y))

    def test_inst_type_mismatch(self):
        with pytest.raises(KernelError):
            INST({x: p}, REFL(x))

    def test_inst_type(self):
        a = TyVar("a")
        v = Var("v", a)
        th = REFL(v)
        out = INST_TYPE({a: num_ty}, th)
        assert out.concl == mk_eq(Var("v", num_ty), Var("v", num_ty))

    def test_inst_type_rejects_bad_keys(self):
        with pytest.raises(KernelError):
            INST_TYPE({num_ty: bool_ty}, REFL(x))

    def test_sym(self):
        th = ASSUME(mk_eq(p, q))
        assert SYM(th).concl == mk_eq(q, p)

    def test_proof_size_counts_dag(self):
        th = TRANS(REFL(x), REFL(x))
        assert proof_size(th) >= 2


class TestTheoryExtension:
    def test_new_axiom_requires_bool(self):
        with pytest.raises(KernelError):
            new_axiom(x)

    def test_new_axiom_recorded(self):
        before = len(current_theory().trusted_base())
        th = new_axiom(mk_eq(p, p), name="TEST_AXIOM_RECORD")
        assert th.concl == mk_eq(p, p)
        assert len(current_theory().trusted_base()) == before + 1

    def test_new_definition_rejects_free_vars(self):
        with pytest.raises(KernelError):
            new_definition("BAD_DEF", Comb(f, x))

    def test_new_definition_creates_constant(self):
        thm = new_definition("ID_NUM_TEST", Abs(x, x))
        assert thm.concl.is_eq()
        assert current_theory().has_constant("ID_NUM_TEST")
        with pytest.raises(TheoryError):
            new_definition("ID_NUM_TEST", Abs(x, x))

    def test_compute_rule(self):
        t = word_op("ADD", mk_numeral(20), mk_numeral(22))
        th = COMPUTE(t)
        assert th.concl == mk_eq(t, mk_numeral(42))

    def test_compute_requires_ground_arguments(self):
        t = word_op("ADD", x, mk_numeral(1))
        with pytest.raises(KernelError):
            COMPUTE(t)

    def test_compute_requires_computable_constant(self):
        with pytest.raises(KernelError):
            COMPUTE(Comb(Const("FST", mk_fun_ty(mk_fun_ty(num_ty, num_ty), num_ty)), f))

    def test_new_computable_constant_roundtrip(self):
        const = new_computable_constant(
            "TRIPLE_TEST", mk_fun_ty(num_ty, num_ty), 1, lambda a: 3 * a
        )
        th = COMPUTE(Comb(const, mk_numeral(5)))
        assert th.concl.rand == mk_numeral(15)
