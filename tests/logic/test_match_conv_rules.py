"""Tests for matching, conversions, derived rules and the standard library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import conv
from repro.logic.conv import ConvError
from repro.logic.ground import (
    GroundError,
    dest_numeral,
    is_ground,
    mk_bool,
    mk_numeral,
    term_of_value,
    value_of_term,
)
from repro.logic.hol_types import TyVar, bool_ty, mk_fun_ty, num_ty
from repro.logic.kernel import ASSUME, REFL
from repro.logic.match import MatchError, apply_substitution, matches, term_match
from repro.logic.rules import (
    RuleError,
    alpha_link,
    equal_by_normalisation,
    prove_hyp,
    trans_chain,
)
from repro.logic.stdlib import dest_let, ensure_stdlib, is_let, mk_let, word_op
from repro.logic.terms import Abs, Var, dest_eq, mk_eq, mk_fst, mk_pair, mk_snd

ensure_stdlib()

x = Var("x", num_ty)
y = Var("y", num_ty)
n = Var("n", num_ty)
f = Var("f", mk_fun_ty(num_ty, num_ty))


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------

class TestMatching:
    def test_match_variable_pattern(self):
        env, tyenv = term_match(x, word_op("ADD", y, mk_numeral(1)))
        assert env[x] == word_op("ADD", y, mk_numeral(1))
        assert not tyenv

    def test_match_structure(self):
        pattern = word_op("ADD", x, y)
        target = word_op("ADD", mk_numeral(1), mk_numeral(2))
        env, _ = term_match(pattern, target)
        assert env == {x: mk_numeral(1), y: mk_numeral(2)}

    def test_match_nonlinear_pattern(self):
        pattern = word_op("ADD", x, x)
        assert matches(pattern, word_op("ADD", y, y))
        assert not matches(pattern, word_op("ADD", y, mk_numeral(1)))

    def test_match_with_types(self):
        a = TyVar("a")
        v = Var("v", a)
        env, tyenv = term_match(v, mk_numeral(3))
        assert tyenv[a] == num_ty

    def test_match_respects_fixed_vars(self):
        with pytest.raises(MatchError):
            term_match(x, y, avoid=[x])

    def test_match_under_binders(self):
        pattern = Abs(n, word_op("ADD", n, x))
        target = Abs(y, word_op("ADD", y, mk_numeral(7)))
        env, _ = term_match(pattern, target)
        assert env[x] == mk_numeral(7)

    def test_match_refuses_capture(self):
        pattern = Abs(n, x)
        target = Abs(y, y)
        with pytest.raises(MatchError):
            term_match(pattern, target)

    def test_apply_substitution_reproduces_target(self):
        pattern = word_op("MUXW", Var("s", bool_ty), x, y)
        target = word_op("MUXW", mk_bool(True), mk_numeral(4), mk_numeral(9))
        subst = term_match(pattern, target)
        assert apply_substitution(subst, pattern) == target

    def test_constant_mismatch(self):
        with pytest.raises(MatchError):
            term_match(word_op("ADD", x, y), word_op("SUB", x, y))


# ---------------------------------------------------------------------------
# conversions
# ---------------------------------------------------------------------------

class TestConversions:
    def test_all_conv(self):
        assert conv.ALL_CONV(x).concl == mk_eq(x, x)

    def test_no_conv(self):
        with pytest.raises(ConvError):
            conv.NO_CONV(x)

    def test_thenc_chains(self):
        t = word_op("ADD", word_op("ADD", mk_numeral(1), mk_numeral(2)), mk_numeral(3))
        chained = conv.THENC(conv.ALL_CONV, conv.EVAL_CONV)(t)
        assert dest_eq(chained.concl)[1] == mk_numeral(6)

    def test_orelsec_falls_through(self):
        c = conv.ORELSEC(conv.NO_CONV, conv.ALL_CONV)
        assert c(x).concl == mk_eq(x, x)

    def test_try_conv(self):
        assert conv.TRY_CONV(conv.NO_CONV)(x).concl == mk_eq(x, x)

    def test_changed_conv(self):
        with pytest.raises(ConvError):
            conv.CHANGED_CONV(conv.ALL_CONV)(x)

    def test_rand_rator_conv(self):
        t = word_op("ADD", mk_numeral(1), word_op("ADD", mk_numeral(2), mk_numeral(3)))
        th = conv.RAND_CONV(conv.EVAL_CONV)(t)
        assert dest_eq(th.concl)[1] == word_op("ADD", mk_numeral(1), mk_numeral(5))

    def test_abs_conv(self):
        t = Abs(x, word_op("ADD", mk_numeral(2), mk_numeral(2)))
        th = conv.ABS_CONV(conv.EVAL_CONV)(t)
        assert dest_eq(th.concl)[1] == Abs(x, mk_numeral(4))

    def test_beta_let_fst_snd(self):
        lt = mk_let(x, mk_numeral(3), word_op("ADD", x, mk_numeral(4)))
        th = conv.LET_CONV(lt)
        assert dest_eq(th.concl)[1] == word_op("ADD", mk_numeral(3), mk_numeral(4))
        p = mk_pair(mk_numeral(1), mk_numeral(2))
        assert dest_eq(conv.FST_CONV(mk_fst(p)).concl)[1] == mk_numeral(1)
        assert dest_eq(conv.SND_CONV(mk_snd(p)).concl)[1] == mk_numeral(2)

    def test_fst_conv_requires_pair_literal(self):
        from repro.logic.hol_types import mk_prod_ty

        v = Var("pair", mk_prod_ty(num_ty, num_ty))
        with pytest.raises(ConvError):
            conv.FST_CONV(mk_fst(v))

    def test_eval_conv_nested(self):
        t = word_op(
            "MUXW",
            word_op("EQW", mk_numeral(3), mk_numeral(3)),
            word_op("INCW", mk_numeral(4), mk_numeral(7)),
            mk_numeral(0),
        )
        th = conv.EVAL_CONV(t)
        assert dest_eq(th.concl)[1] == mk_numeral(8)

    def test_rewr_conv(self):
        # rewrite with |- x + 0 = x  (established by evaluation on a schematic
        # instance is not possible; use an assumption instead)
        eq = ASSUME(mk_eq(word_op("ADD", x, mk_numeral(0)), x))
        c = conv.REWR_CONV(eq)
        target = word_op("ADD", mk_numeral(9), mk_numeral(0))
        th = c(target)
        assert dest_eq(th.concl)[1] == mk_numeral(9)

    def test_rewr_conv_fails_on_mismatch(self):
        eq = ASSUME(mk_eq(word_op("ADD", x, mk_numeral(0)), x))
        with pytest.raises(ConvError):
            conv.REWR_CONV(eq)(word_op("SUB", mk_numeral(9), mk_numeral(0)))

    def test_top_depth_conv_fixpoint(self):
        t = word_op("ADD", word_op("MUL", mk_numeral(2), mk_numeral(3)),
                    word_op("SUB", mk_numeral(9), mk_numeral(4)))
        th = conv.TOP_DEPTH_CONV(conv.COMPUTE_CONV)(t)
        assert dest_eq(th.concl)[1] == mk_numeral(11)

    def test_conv_rule_and_rhs_rule(self):
        eq = conv.EVAL_CONV(word_op("ADD", mk_numeral(2), mk_numeral(2)))
        out = conv.RHS_CONV_RULE(conv.ALL_CONV, eq)
        assert out.concl == eq.concl
        flipped = conv.LHS_CONV_RULE(conv.ALL_CONV, eq)
        assert flipped.concl == eq.concl


# ---------------------------------------------------------------------------
# derived rules
# ---------------------------------------------------------------------------

class TestDerivedRules:
    def test_trans_chain(self):
        a = conv.EVAL_CONV(word_op("ADD", mk_numeral(1), mk_numeral(1)))
        b = ASSUME(mk_eq(mk_numeral(2), mk_numeral(2)))
        th = trans_chain([a, b])
        assert dest_eq(th.concl) == (word_op("ADD", mk_numeral(1), mk_numeral(1)),
                                     mk_numeral(2))

    def test_trans_chain_empty(self):
        with pytest.raises(RuleError):
            trans_chain([])

    def test_prove_hyp(self):
        p = Var("p", bool_ty)
        lemma = ASSUME(p)
        # {p} |- p with lemma {p} |- p gives {p} |- p (hyp retained from lemma)
        out = prove_hyp(lemma, ASSUME(p))
        assert out.concl == p

    def test_alpha_link(self):
        t1 = Abs(x, word_op("ADD", x, mk_numeral(1)))
        t2 = Abs(y, word_op("ADD", y, mk_numeral(1)))
        eq = REFL(t1)
        linked = alpha_link(eq, t2)
        assert dest_eq(linked.concl)[0] == t2

    def test_equal_by_normalisation(self):
        lhs = word_op("ADD", mk_numeral(2), mk_numeral(3))
        rhs = word_op("ADD", mk_numeral(4), mk_numeral(1))
        th = equal_by_normalisation(conv.EVAL_CONV(lhs), conv.EVAL_CONV(rhs))
        assert th.concl == mk_eq(lhs, rhs)

    def test_equal_by_normalisation_rejects_mismatch(self):
        lhs = word_op("ADD", mk_numeral(2), mk_numeral(3))
        rhs = word_op("ADD", mk_numeral(4), mk_numeral(2))
        with pytest.raises(RuleError):
            equal_by_normalisation(conv.EVAL_CONV(lhs), conv.EVAL_CONV(rhs))


# ---------------------------------------------------------------------------
# standard library and ground values
# ---------------------------------------------------------------------------

class TestStdlibAndGround:
    def test_let_roundtrip(self):
        lt = mk_let(x, mk_numeral(1), word_op("ADD", x, x))
        assert is_let(lt)
        var, value, body = dest_let(lt)
        assert var == x and value == mk_numeral(1)

    def test_ground_roundtrip_simple(self):
        for value in (True, False, 0, 7, (1, 2), (True, 3, 4)):
            assert value_of_term(term_of_value(value)) == value

    def test_non_ground_detection(self):
        assert not is_ground(x)
        assert is_ground(mk_pair(mk_numeral(1), mk_bool(False)))
        with pytest.raises(GroundError):
            value_of_term(x)

    def test_numeral_bounds(self):
        with pytest.raises(GroundError):
            mk_numeral(-1)
        assert dest_numeral(mk_numeral(12)) == 12

    @given(st.integers(0, 2**16), st.integers(0, 2**16), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_word_ops_match_python_semantics(self, a, b, w):
        mask = (1 << w) - 1
        cases = {
            "ADDW": (a + b) & mask,
            "SUBW": (a - b) & mask,
            "MULW": (a * b) & mask,
            "ANDW": (a & b) & mask,
            "ORW": (a | b) & mask,
            "XORW": (a ^ b) & mask,
        }
        for op, expected in cases.items():
            t = word_op(op, mk_numeral(w), mk_numeral(a), mk_numeral(b))
            th = conv.EVAL_CONV(t)
            assert dest_numeral(dest_eq(th.concl)[1]) == expected

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_comparators_match_python_semantics(self, a, b):
        from repro.logic.ground import dest_bool_literal

        for op, expected in (("EQW", a == b), ("NEQW", a != b),
                             ("LTW", a < b), ("GEW", a >= b)):
            th = conv.EVAL_CONV(word_op(op, mk_numeral(a), mk_numeral(b)))
            assert dest_bool_literal(dest_eq(th.concl)[1]) == expected
