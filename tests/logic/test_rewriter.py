"""Tests for the worklist rewrite engine (``repro.logic.rewriter``).

The contract: ``NET_REWRITE_CONV`` / the net-based normalisers prove
theorems *alpha-equivalent* to the classic ``TOP_DEPTH_CONV``-based
engines', while performing strictly fewer kernel inferences on gate-level
terms (only changed spines emit congruence steps).
"""

import random

import pytest

from repro.circuits.bitblast import bitblast
from repro.circuits.generators import figure2
from repro.formal import formal_retiming
from repro.formal.embed import embed_netlist
from repro.logic import conv
from repro.logic.ground import mk_numeral
from repro.logic.hol_types import num_ty
from repro.logic.kernel import inference_steps, new_axiom, reset_kernel
from repro.logic.rewriter import RewriteNet, net_conv
from repro.logic.stdlib import ensure_stdlib, word_op
from repro.logic.terms import Var, aconv, mk_eq


@pytest.fixture(autouse=True)
def fresh_theory():
    reset_kernel()
    ensure_stdlib()


def _arith_rules():
    """A confluent, terminating demo rule set: unit/zero laws of ADD/MUL."""
    x = Var("x", num_ty)
    zero, one = mk_numeral(0), mk_numeral(1)
    return [
        new_axiom(mk_eq(word_op("ADD", x, zero), x), name="ADD_0"),
        new_axiom(mk_eq(word_op("ADD", zero, x), x), name="0_ADD"),
        new_axiom(mk_eq(word_op("MUL", x, one), x), name="MUL_1"),
        new_axiom(mk_eq(word_op("MUL", x, zero), zero), name="MUL_0"),
    ]


def _random_term(rng, depth):
    if depth == 0 or rng.random() < 0.25:
        choice = rng.random()
        if choice < 0.4:
            return mk_numeral(rng.choice([0, 1, rng.randrange(2, 9)]))
        return Var(rng.choice("abc"), num_ty)
    op = rng.choice(["ADD", "MUL"])
    return word_op(op, _random_term(rng, depth - 1), _random_term(rng, depth - 1))


class TestNetRewriteEquivalence:
    def test_randomized_terms_match_rewrite_conv(self):
        rules = _arith_rules()
        old_conv = conv.REWRITE_CONV(rules)
        new_conv = conv.NET_REWRITE_CONV(rules)
        rng = random.Random(7)
        for _ in range(40):
            t = _random_term(rng, 4)
            th_old = old_conv(t)
            th_new = new_conv(t)
            assert aconv(th_old.concl, th_new.concl), (
                f"engines disagree on {t}: {th_old} vs {th_new}"
            )

    def test_leaf_redexes_strictly_fewer_steps(self):
        """A wide tree with redexes at the leaves: the classic engine pays a
        full REFL re-sweep per pass, the worklist engine only the changed
        spines."""
        rules = _arith_rules()
        old_conv = conv.REWRITE_CONV(rules)
        new_conv = conv.NET_REWRITE_CONV(rules)
        leaves = [
            word_op("ADD", Var(f"v{k}", num_ty), mk_numeral(0)) for k in range(32)
        ]
        level = leaves
        while len(level) > 1:
            level = [
                word_op("MUL", level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
        t = level[0]
        before = inference_steps()
        th_old = old_conv(t)
        old_steps = inference_steps() - before
        before = inference_steps()
        th_new = new_conv(t)
        new_steps = inference_steps() - before
        assert aconv(th_old.concl, th_new.concl)
        assert new_steps < old_steps

    def test_top_sweep_conv_matches_top_depth_conv(self):
        one = conv.ORELSEC(conv.BETA_CONV, conv.LET_CONV, conv.FST_CONV,
                           conv.SND_CONV, conv.COMPUTE_CONV)
        embedded = embed_netlist(figure2(3))
        th_old = conv.TOP_DEPTH_CONV(one)(embedded.step)
        th_new = conv.TOP_SWEEP_CONV(one)(embedded.step)
        assert aconv(th_old.concl, th_new.concl)


class TestGateLevelStepCounts:
    def test_gate_level_split_strictly_fewer_inferences(self):
        """ISSUE acceptance: the gate-level ablation circuit (figure2(8)
        bitblasted — 45 cells after DAG-aware rewriting + pattern-matched
        emission; the pre-rewriting AND/NOT/CONST emission produced 182)."""
        from repro.logic.stdlib import dest_let, is_let
        from repro.logic.terms import Abs, Comb, Var as TVar, mk_fst, mk_pair, mk_snd
        from repro.retiming.cuts import maximal_forward_cut

        gate = bitblast(figure2(8)).netlist
        cut = maximal_forward_cut(gate)
        embedded = embed_netlist(gate)
        cut_nets = [gate.cells[c].output for c in cut]
        assert gate.num_gates() == 45
        assert gate.num_gates() <= 100  # ISSUE-7 acceptance bound

        analysis = formal_retiming.analyse_cut(gate, cut, embedded)
        f_term = formal_retiming.build_f_term(gate, embedded, analysis)
        g_term = formal_retiming.build_g_term(gate, embedded, analysis)
        p = TVar("p", embedded.step.bvar.ty)
        split_term = Abs(
            p, Comb(g_term, mk_pair(mk_fst(p), Comb(f_term, mk_snd(p))))
        )

        name_set = set(cut_nets)

        def targeted_let(t):
            if is_let(t):
                var, _value, _body = dest_let(t)
                if var.name in name_set:
                    return conv.LET_CONV(t)
            raise conv.ConvError("not a targeted let binding")

        old_unfold = conv.TOP_DEPTH_CONV(targeted_let)
        old_reduce = conv.TOP_DEPTH_CONV(
            conv.ORELSEC(conv.BETA_CONV, conv.FST_CONV, conv.SND_CONV)
        )

        before = inference_steps()
        th_old = old_unfold(embedded.step)
        th_old_split = old_reduce(split_term)
        old_steps = inference_steps() - before

        before = inference_steps()
        th_new = formal_retiming.unfold_named_lets_conv(cut_nets)(embedded.step)
        th_new_split = formal_retiming.reduce_split_conv(split_term)
        new_steps = inference_steps() - before

        assert aconv(th_old.concl, th_new.concl)
        assert aconv(th_old_split.concl, th_new_split.concl)
        assert new_steps < old_steps
        # the dirty-spine engine beats the whole-term resweep by >= 10x here
        assert new_steps * 10 <= old_steps

    def test_full_retiming_theorem_alpha_equivalent_to_old_engine(self, monkeypatch):
        """The four-step pipeline proves the same theorem under both engines."""
        from repro.retiming.cuts import maximal_forward_cut

        gate = bitblast(figure2(3)).netlist
        cut = maximal_forward_cut(gate)

        new_result = formal_retiming.formal_forward_retiming(
            gate, cut, cross_check=False
        )
        new_steps = int(new_result.stats["inference_steps"])

        # reinstate the PR-1 TOP_DEPTH_CONV engines and rerun
        old_reduce = conv.TOP_DEPTH_CONV(
            conv.ORELSEC(conv.BETA_CONV, conv.FST_CONV, conv.SND_CONV)
        )

        def old_unfold(names):
            name_set = set(names)
            from repro.logic.stdlib import dest_let, is_let

            def single(t):
                if is_let(t):
                    var, _value, _body = dest_let(t)
                    if var.name in name_set:
                        return conv.LET_CONV(t)
                raise conv.ConvError("not a targeted let binding")

            return conv.TOP_DEPTH_CONV(single)

        def old_eval(t):
            one = conv.ORELSEC(conv.BETA_CONV, conv.LET_CONV, conv.FST_CONV,
                               conv.SND_CONV, conv.COMPUTE_CONV)
            return conv.TOP_DEPTH_CONV(one)(t)

        monkeypatch.setattr(formal_retiming, "reduce_split_conv", old_reduce)
        monkeypatch.setattr(formal_retiming, "unfold_named_lets_conv", old_unfold)
        monkeypatch.setattr(conv, "EVAL_CONV", old_eval)
        old_result = formal_retiming.formal_forward_retiming(
            gate, cut, cross_check=False
        )
        old_steps = int(old_result.stats["inference_steps"])

        assert aconv(old_result.theorem.concl, new_result.theorem.concl)
        assert not old_result.theorem.hyps and not new_result.theorem.hyps
        assert new_steps < old_steps


class TestRewriteNetIndexing:
    def test_candidates_filter_by_head_and_arity(self):
        rules = _arith_rules()
        net = RewriteNet().add_theorems(rules)
        x = Var("a", num_ty)
        add_term = word_op("ADD", x, mk_numeral(0))
        mul_term = word_op("MUL", x, mk_numeral(1))
        assert len(net.candidates(add_term)) == 2  # the two ADD rules
        assert len(net.candidates(mul_term)) == 2  # the two MUL rules
        assert net.candidates(x) == []
        assert net.candidates(mk_numeral(5)) == []

    def test_unchanged_term_costs_one_refl(self):
        rules = _arith_rules()
        engine = conv.NET_REWRITE_CONV(rules)
        x = Var("a", num_ty)
        t = word_op("ADD", x, mk_numeral(2))  # no rule applies anywhere
        for _ in range(3):
            t = word_op("MUL", t, t)
        before = inference_steps()
        th = engine(t)
        assert inference_steps() - before == 1  # just the top-level REFL
        assert th.rhs is t

    def test_shared_subterms_normalise_once(self):
        rules = _arith_rules()
        x = Var("a", num_ty)
        redex = word_op("ADD", x, mk_numeral(0))
        # a balanced tree of 2^6 pointer-identical redex leaves
        t = redex
        for _ in range(6):
            t = word_op("MUL", t, t)
        net = RewriteNet().add_theorems(rules)
        before = inference_steps()
        th = net_conv(net)(t)
        steps = inference_steps() - before
        expected = x
        for _ in range(6):
            expected = word_op("MUL", expected, expected)
        assert th.rhs is expected
        # each tree level costs O(1) (one MK_COMB over two shared children),
        # far below the 2^6 leaves a tree-walk would pay
        assert steps < 60

    def test_multi_argument_beta_redex_pattern_still_fires(self):
        """A rule whose LHS is a beta redex under 2+ arguments must behave
        like REWRITE_CONV (it is filed as a wildcard, not in the beta
        bucket, whose guard only sees arity-1 redexes)."""
        from repro.logic.terms import Abs, Comb

        x = Var("x", num_ty)
        y = Var("y", num_ty)
        p = Var("p", num_ty)
        q = Var("q", num_ty)
        lam = Abs(x, Abs(y, word_op("ADD", x, y)))
        lhs = Comb(Comb(lam, p), q)
        th = new_axiom(mk_eq(lhs, word_op("MUL", p, q)), name="REDEX2")
        t = Comb(Comb(lam, mk_numeral(2)), mk_numeral(3))
        th_old = conv.REWRITE_CONV([th])(t)
        th_new = conv.NET_REWRITE_CONV([th])(t)
        assert aconv(th_old.concl, th_new.concl)
        assert th_new.rhs is word_op("MUL", mk_numeral(2), mk_numeral(3))

    def test_limit_raises(self):
        # a looping rule set: a = b, b = a
        a = Var("a", num_ty)
        b = Var("b", num_ty)
        th_ab = new_axiom(mk_eq(a, b), name="AB")
        th_ba = new_axiom(mk_eq(b, a), name="BA")
        engine = conv.NET_REWRITE_CONV([th_ab, th_ba], limit=50)
        with pytest.raises(conv.ConvError):
            engine(a)
