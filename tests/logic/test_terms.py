"""Unit tests for the term language."""

import pytest
from hypothesis import given, strategies as st

from repro.logic.hol_types import bool_ty, mk_fun_ty, mk_prod_ty, num_ty
from repro.logic.terms import (
    Abs,
    Comb,
    Const,
    TermError,
    Var,
    aconv,
    beta_normalize,
    beta_reduce_step,
    dest_binop,
    dest_eq,
    dest_pair,
    flatten_tuple,
    free_in,
    is_pair,
    iter_subterms,
    list_mk_abs,
    list_mk_comb,
    mk_eq,
    mk_fst,
    mk_pair,
    mk_snd,
    mk_tuple,
    strip_abs,
    strip_comb,
    var_subst,
    variant,
)

x = Var("x", num_ty)
y = Var("y", num_ty)
b = Var("b", bool_ty)
f = Var("f", mk_fun_ty(num_ty, num_ty))


class TestConstruction:
    def test_var_and_const(self):
        assert x.is_var() and not x.is_const()
        c = Const("0", num_ty)
        assert c.is_const() and c.is_const("0") and not c.is_const("1")

    def test_comb_typing(self):
        app = Comb(f, x)
        assert app.ty == num_ty
        assert app.rator == f and app.rand == x

    def test_comb_type_errors(self):
        with pytest.raises(TermError):
            Comb(x, y)  # x is not a function
        with pytest.raises(TermError):
            Comb(f, b)  # wrong argument type

    def test_abs_typing(self):
        lam = Abs(x, Comb(f, x))
        assert lam.ty == mk_fun_ty(num_ty, num_ty)
        assert lam.bvar == x

    def test_abs_requires_var(self):
        with pytest.raises(TermError):
            Abs(Comb(f, x), x)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            x.name = "z"

    def test_accessors_raise_on_wrong_shape(self):
        with pytest.raises(TermError):
            _ = x.rator
        with pytest.raises(TermError):
            _ = x.body

    def test_structural_equality(self):
        assert Comb(f, x) == Comb(f, x)
        assert Comb(f, x) != Comb(f, y)
        assert Var("x", num_ty) != Var("x", bool_ty)


class TestEquationsAndBinops:
    def test_mk_dest_eq(self):
        eq = mk_eq(x, y)
        assert eq.is_eq()
        assert dest_eq(eq) == (x, y)
        assert eq.ty == bool_ty

    def test_mk_eq_type_mismatch(self):
        with pytest.raises(TermError):
            mk_eq(x, b)

    def test_dest_eq_on_non_equation(self):
        with pytest.raises(TermError):
            dest_eq(x)

    def test_dest_binop(self):
        eq = mk_eq(x, y)
        op, lhs, rhs = dest_binop(eq)
        assert op.is_const("=") and lhs == x and rhs == y


class TestListOperations:
    def test_list_mk_comb_and_strip(self):
        g = Var("g", mk_fun_ty(num_ty, mk_fun_ty(num_ty, num_ty)))
        t = list_mk_comb(g, [x, y])
        head, args = strip_comb(t)
        assert head == g and args == [x, y]

    def test_list_mk_abs_and_strip(self):
        t = list_mk_abs([x, y], mk_eq(x, y))
        vars_, body = strip_abs(t)
        assert vars_ == [x, y] and body == mk_eq(x, y)

    def test_iter_subterms_counts(self):
        t = Comb(f, Comb(f, x))
        subs = list(iter_subterms(t))
        assert t in subs and x in subs and f in subs
        assert t.size() == len(subs)


class TestPairsAndTuples:
    def test_pair_roundtrip(self):
        p = mk_pair(x, b)
        assert is_pair(p)
        assert dest_pair(p) == (x, b)
        assert p.ty == mk_prod_ty(num_ty, bool_ty)

    def test_tuple_right_nested(self):
        t = mk_tuple([x, y, b])
        assert flatten_tuple(t) == [x, y, b]
        inner = dest_pair(t)[1]
        assert is_pair(inner)

    def test_fst_snd_types(self):
        p = mk_pair(x, b)
        assert mk_fst(p).ty == num_ty
        assert mk_snd(p).ty == bool_ty

    def test_tuple_needs_elements(self):
        with pytest.raises(TermError):
            mk_tuple([])


class TestFreeVarsAndSubstitution:
    def test_free_vars(self):
        t = Abs(x, Comb(f, Comb(f, y)))
        assert t.free_vars() == {f, y}
        assert free_in(y, t) and not free_in(x, t)

    def test_subst_simple(self):
        t = Comb(f, x)
        assert var_subst({x: y}, t) == Comb(f, y)

    def test_subst_respects_binding(self):
        t = Abs(x, Comb(f, x))
        assert var_subst({x: y}, t) == t

    def test_subst_capture_avoidance(self):
        # (\y. x + y)[x := y] must rename the bound y
        g = Var("g", mk_fun_ty(num_ty, mk_fun_ty(num_ty, num_ty)))
        t = Abs(y, list_mk_comb(g, [x, y]))
        out = var_subst({x: y}, t)
        assert out.bvar != y
        assert aconv(out, Abs(Var("z", num_ty), list_mk_comb(g, [y, Var("z", num_ty)])))

    def test_subst_type_mismatch(self):
        with pytest.raises(TermError):
            var_subst({x: b}, Comb(f, x))

    def test_variant_renames(self):
        v = variant([x, Var("x'", num_ty)], x)
        assert v.name not in ("x", "x'")


class TestAlphaAndBeta:
    def test_alpha_equivalent(self):
        t1 = Abs(x, Comb(f, x))
        t2 = Abs(y, Comb(f, y))
        assert aconv(t1, t2)
        assert t1 != t2

    def test_alpha_distinguishes_free(self):
        t1 = Abs(x, Comb(f, y))
        t2 = Abs(x, Comb(f, x))
        assert not aconv(t1, t2)

    def test_alpha_requires_same_binder_type(self):
        t1 = Abs(x, mk_eq(x, x))
        t2 = Abs(b, mk_eq(b, b))
        assert not aconv(t1, t2)

    def test_beta_step(self):
        redex = Comb(Abs(x, Comb(f, x)), y)
        assert beta_reduce_step(redex) == Comb(f, y)

    def test_beta_step_requires_redex(self):
        with pytest.raises(TermError):
            beta_reduce_step(Comb(f, x))

    def test_beta_normalize_nested(self):
        ident = Abs(x, x)
        t = Comb(ident, Comb(ident, y))
        assert beta_normalize(t) == y


# -- property-based -----------------------------------------------------------

_names = st.sampled_from(["x", "y", "z", "w"])


@st.composite
def _num_terms(draw, depth=0):
    choice = draw(st.integers(0, 3 if depth < 3 else 1))
    if choice <= 1:
        return Var(draw(_names), num_ty)
    if choice == 2:
        return Comb(f, draw(_num_terms(depth + 1)))
    bound = Var(draw(_names), num_ty)
    body = draw(_num_terms(depth + 1))
    return Comb(Abs(bound, body), draw(_num_terms(depth + 1)))


@given(_num_terms())
def test_property_aconv_reflexive(t):
    assert aconv(t, t)


@given(_num_terms())
def test_property_subst_identity(t):
    assert var_subst({}, t) is t


@given(_num_terms(), _names)
def test_property_beta_normal_form_has_no_redex(t, name):
    normal = beta_normalize(t)
    for sub in iter_subterms(normal):
        assert not (sub.is_comb() and sub.rator.is_abs())


@given(_num_terms())
def test_property_free_vars_preserved_by_alpha_normalisation(t):
    # substituting a fresh variable for itself never changes the term
    fresh = Var("fresh", num_ty)
    assert var_subst({fresh: fresh}, t) is t
