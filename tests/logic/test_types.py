"""Unit tests for the HOL type language."""

import pytest
from hypothesis import given, strategies as st

from repro.logic.hol_types import (
    TyApp,
    TyVar,
    TypeMatchError,
    bool_ty,
    dest_fun_ty,
    dest_prod_ty,
    flatten_prod_ty,
    fresh_tyvar,
    mk_fun_ty,
    mk_prod_ty,
    mk_tuple_ty,
    mk_vartype,
    num_ty,
    occurs_in,
    strip_fun_ty,
    type_match,
    type_subst,
)


class TestConstruction:
    def test_bool_is_nullary_operator(self):
        assert bool_ty.is_type()
        assert not bool_ty.is_vartype()
        assert bool_ty.op == "bool"
        assert bool_ty.args == ()

    def test_vartype(self):
        a = mk_vartype("a")
        assert a.is_vartype()
        assert str(a) == "'a"

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            TyVar("")
        with pytest.raises(ValueError):
            TyApp("")

    def test_fun_type_accessors(self):
        f = mk_fun_ty(bool_ty, num_ty)
        assert f.is_fun()
        assert f.domain == bool_ty
        assert f.codomain == num_ty
        assert dest_fun_ty(f) == (bool_ty, num_ty)

    def test_prod_type_accessors(self):
        p = mk_prod_ty(bool_ty, num_ty)
        assert p.is_prod()
        assert p.fst_type == bool_ty
        assert p.snd_type == num_ty
        assert dest_prod_ty(p) == (bool_ty, num_ty)

    def test_domain_of_non_function_raises(self):
        with pytest.raises(TypeError):
            _ = bool_ty.domain
        with pytest.raises(TypeError):
            dest_prod_ty(bool_ty)

    def test_equality_and_hash(self):
        assert mk_fun_ty(bool_ty, num_ty) == mk_fun_ty(bool_ty, num_ty)
        assert hash(mk_fun_ty(bool_ty, num_ty)) == hash(mk_fun_ty(bool_ty, num_ty))
        assert mk_fun_ty(bool_ty, num_ty) != mk_fun_ty(num_ty, bool_ty)
        assert TyVar("a") != TyApp("a")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            bool_ty.op = "nat"
        with pytest.raises(AttributeError):
            TyVar("a").name = "b"

    def test_bad_argument_type(self):
        with pytest.raises(TypeError):
            TyApp("fun", (bool_ty, "not a type"))


class TestTupleTypes:
    def test_single(self):
        assert mk_tuple_ty([num_ty]) == num_ty

    def test_right_nesting(self):
        t = mk_tuple_ty([bool_ty, num_ty, bool_ty])
        assert t == mk_prod_ty(bool_ty, mk_prod_ty(num_ty, bool_ty))

    def test_flatten_roundtrip(self):
        parts = (bool_ty, num_ty, bool_ty, num_ty)
        assert flatten_prod_ty(mk_tuple_ty(parts)) == parts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mk_tuple_ty([])

    def test_strip_fun(self):
        ty = mk_fun_ty(bool_ty, mk_fun_ty(num_ty, bool_ty))
        doms, cod = strip_fun_ty(ty)
        assert doms == (bool_ty, num_ty)
        assert cod == bool_ty


class TestSubstitutionAndVars:
    def test_type_vars(self):
        a, b = TyVar("a"), TyVar("b")
        ty = mk_fun_ty(a, mk_prod_ty(b, bool_ty))
        assert ty.type_vars() == {a, b}

    def test_subst(self):
        a = TyVar("a")
        ty = mk_fun_ty(a, a)
        assert type_subst({a: num_ty}, ty) == mk_fun_ty(num_ty, num_ty)

    def test_subst_untouched_shares(self):
        ty = mk_fun_ty(bool_ty, num_ty)
        assert type_subst({TyVar("a"): num_ty}, ty) is ty

    def test_occurs_in(self):
        a = TyVar("a")
        assert occurs_in(a, mk_fun_ty(bool_ty, a))
        assert not occurs_in(a, mk_fun_ty(bool_ty, num_ty))

    def test_fresh_tyvar(self):
        avoid = [TyVar("a"), TyVar("a0")]
        fresh = fresh_tyvar(avoid, base="a")
        assert fresh not in avoid


class TestMatching:
    def test_match_variable(self):
        a = TyVar("a")
        env = type_match(a, mk_fun_ty(bool_ty, num_ty))
        assert env[a] == mk_fun_ty(bool_ty, num_ty)

    def test_match_structure(self):
        a, b = TyVar("a"), TyVar("b")
        env = type_match(mk_fun_ty(a, b), mk_fun_ty(num_ty, bool_ty))
        assert env == {a: num_ty, b: bool_ty}

    def test_match_conflict(self):
        a = TyVar("a")
        with pytest.raises(TypeMatchError):
            type_match(mk_fun_ty(a, a), mk_fun_ty(num_ty, bool_ty))

    def test_match_operator_mismatch(self):
        with pytest.raises(TypeMatchError):
            type_match(bool_ty, num_ty)

    def test_match_instantiates_pattern(self):
        a, b = TyVar("a"), TyVar("b")
        pattern = mk_prod_ty(a, mk_fun_ty(b, a))
        target = mk_prod_ty(num_ty, mk_fun_ty(bool_ty, num_ty))
        env = type_match(pattern, target)
        assert type_subst(env, pattern) == target


# -- property-based -----------------------------------------------------------

_base_types = st.sampled_from([bool_ty, num_ty, TyVar("a"), TyVar("b")])


def _types(depth=2):
    return st.recursive(
        _base_types,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: mk_fun_ty(*p)),
            st.tuples(children, children).map(lambda p: mk_prod_ty(*p)),
        ),
        max_leaves=6,
    )


@given(_types())
def test_property_subst_identity(ty):
    assert type_subst({}, ty) == ty


@given(_types(), _types())
def test_property_subst_removes_variable(ty, replacement):
    a = TyVar("a")
    if occurs_in(a, replacement):
        return
    out = type_subst({a: replacement}, ty)
    assert not occurs_in(a, out) or not occurs_in(a, ty) or a in replacement.type_vars()


@given(_types())
def test_property_match_self(ty):
    env = type_match(ty, ty)
    assert type_subst(env, ty) == ty
