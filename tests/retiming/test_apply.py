"""Tests for applying retimings to netlists (forward, backward, lag-driven)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.generators import (
    counter,
    figure2,
    figure2_retimed,
    fractional_multiplier,
    random_sequential_circuit,
    shift_register,
)
from repro.circuits.simulate import outputs_equal
from repro.circuits.structural import structural_signature
from repro.retiming.apply import (
    BackwardRetimingError,
    RetimingApplyError,
    apply_backward_retiming,
    apply_forward_retiming,
    forward_retimable_cells,
    retime_netlist,
)
from repro.retiming.cuts import false_cut, maximal_forward_cut, sized_forward_cut, single_cell_cut
from repro.retiming.graph import lags_from_cut


class TestForwardRetiming:
    def test_figure2_matches_reference(self):
        original = figure2(4)
        retimed = apply_forward_retiming(original, ["inc"])
        reference = figure2_retimed(4)
        # same behaviour as the hand-retimed reference
        assert outputs_equal(retimed, reference, cycles=200)
        # the moved register got the evaluated initial value f(q) = 1
        new_regs = {r.init for r in retimed.registers.values()}
        assert 1 in new_regs

    def test_register_removed_when_unused(self):
        original = figure2(4)
        retimed = apply_forward_retiming(original, ["inc"])
        assert "D1" not in retimed.registers
        assert len(retimed.registers) == len(original.registers)

    def test_preserves_behaviour_on_counter(self):
        original = counter(5)
        retimed = apply_forward_retiming(original, maximal_forward_cut(original))
        assert outputs_equal(original, retimed, cycles=200, seed=3)

    def test_preserves_behaviour_on_multiplier(self):
        original = fractional_multiplier(4)
        retimed = apply_forward_retiming(original, ["shifter"])
        assert outputs_equal(original, retimed, cycles=200, seed=4)

    def test_false_cut_rejected(self):
        original = figure2(4)
        with pytest.raises(RetimingApplyError):
            apply_forward_retiming(original, ["cmp"])

    def test_unknown_cell_rejected(self):
        with pytest.raises(RetimingApplyError):
            apply_forward_retiming(figure2(3), ["nonexistent"])

    def test_original_untouched(self):
        original = figure2(4)
        signature = structural_signature(original)
        apply_forward_retiming(original, ["inc"])
        assert structural_signature(original) == signature

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_circuits_preserved(self, seed):
        original = random_sequential_circuit(3, 6, 36, seed=seed)
        cut = maximal_forward_cut(original)
        if not cut:
            pytest.skip("no retimable cells for this seed")
        retimed = apply_forward_retiming(original, cut)
        assert outputs_equal(original, retimed, cycles=150, seed=seed)

    @given(st.integers(2, 10), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_property_forward_retiming_preserves_figure2(self, width, seed):
        original = figure2(width)
        retimed = apply_forward_retiming(original, ["inc"])
        assert outputs_equal(original, retimed, cycles=80, seed=seed)


class TestBackwardRetiming:
    def test_backward_undoes_forward_on_pipeline(self):
        original = shift_register(1, width=4)
        # add a combinational stage after the register so backward can move over it
        nl = figure2(3)
        forward = apply_forward_retiming(nl, ["inc"])
        # the register R_inc now sits after the incrementer; move it back
        backward = apply_backward_retiming(forward, ["inc"])
        assert outputs_equal(nl, backward, cycles=150, seed=9)
        assert original  # silence unused warning

    def test_backward_requires_single_register_reader(self):
        nl = figure2(3)
        with pytest.raises(RetimingApplyError):
            apply_backward_retiming(nl, ["mux"])  # mux output feeds two registers

    def test_backward_preimage_search_space_guard(self):
        # Backward retiming needs to *solve* for initial values; over a wide
        # adder the search space is declared intractable and the move fails
        # (the paper notes that the backward direction is the harder one).
        from repro.circuits.netlist import Netlist

        nl = Netlist("wide")
        nl.add_input("a", 16)
        nl.add_input("b", 16)
        nl.add_cell("add", "ADD", ["a", "b"], "sum")
        nl.add_register("R", "sum", "q", init=5, width=16)
        nl.add_cell("buf", "BUF", ["q"], "y")
        nl.add_output("y", 16)
        nl.validate()
        with pytest.raises(BackwardRetimingError):
            apply_backward_retiming(nl, ["add"])

    def test_backward_solves_small_preimage(self):
        # Over a narrow incrementer the preimage is found by search and the
        # behaviour is preserved.
        from repro.circuits.netlist import Netlist

        nl = Netlist("narrow")
        nl.add_input("a", 3)
        nl.add_cell("inc", "INC", ["a"], "next")
        nl.add_register("R", "next", "q", init=5, width=3)
        nl.add_cell("buf", "BUF", ["q"], "y")
        nl.add_output("y", 3)
        nl.validate()
        moved = apply_backward_retiming(nl, ["inc"])
        assert outputs_equal(nl, moved, cycles=100, seed=1)
        inits = sorted(r.init for r in moved.registers.values())
        assert inits == [4]  # INC(4) = 5


class TestLagDrivenRetiming:
    def test_retime_netlist_from_cut_lags(self):
        original = figure2(4)
        lags = lags_from_cut(original, ["inc"])
        retimed = retime_netlist(original, lags)
        assert outputs_equal(original, retimed, cycles=150)

    def test_retime_netlist_noop(self):
        original = figure2(3)
        retimed = retime_netlist(original, {name: 0 for name in original.cells})
        assert outputs_equal(original, retimed, cycles=50)


class TestCutSelection:
    def test_maximal_cut_contents(self):
        cut = maximal_forward_cut(figure2(4))
        assert "inc" in cut and "cmp" not in cut

    def test_sized_cut_deterministic(self):
        nl = random_sequential_circuit(4, 8, 40, seed=3)
        assert sized_forward_cut(nl, 2, seed=1) == sized_forward_cut(nl, 2, seed=1)
        assert len(sized_forward_cut(nl, 2, seed=1)) == 2

    def test_single_cell_cut(self):
        assert single_cell_cut(figure2(3), "inc") == ["inc"]
        with pytest.raises(KeyError):
            single_cell_cut(figure2(3), "ghost")

    def test_false_cut_is_actually_false(self):
        nl = figure2(3)
        bad = false_cut(nl)
        assert bad is not None
        with pytest.raises(RetimingApplyError):
            apply_forward_retiming(nl, bad)

    def test_forward_retimable_cells_netlist(self):
        cells = forward_retimable_cells(fractional_multiplier(4))
        assert "shifter" in cells and "mult" in cells
