"""Tests for the retiming graph and the Leiserson-Saxe algorithms."""

import pytest

from repro.circuits.generators import counter, figure2, fractional_multiplier, shift_register
from repro.retiming.graph import (
    HOST,
    RetimingGraph,
    RetimingGraphError,
    Edge,
    graph_from_netlist,
    lags_from_cut,
)
from repro.retiming.leiserson_saxe import (
    RetimingInfeasible,
    feasible_clock_period,
    forward_retimable_cells,
    forward_retiming_lags,
    min_period_retiming,
    min_register_retiming,
)


@pytest.fixture
def correlator_graph():
    """The classic Leiserson-Saxe correlator-style example.

    host -> a -> b -> c -> host with a register on the feedback edge c -> a;
    delays chosen so retiming can shorten the critical path.
    """
    g = RetimingGraph()
    g.vertices = [HOST, "a", "b", "c"]
    g.delay = {HOST: 0, "a": 3, "b": 3, "c": 7}
    g.edges = [
        Edge(HOST, "a", 1),
        Edge("a", "b", 0),
        Edge("b", "c", 0),
        Edge("c", HOST, 0),
    ]
    return g


class TestGraphModel:
    def test_graph_from_netlist_counts_registers(self, fig2_small):
        g = graph_from_netlist(fig2_small)
        assert g.total_registers() >= 2
        assert HOST in g.vertices
        assert set(g.delay) == set(g.vertices)

    def test_clock_period_of_figure2(self, fig2_small):
        g = graph_from_netlist(fig2_small)
        # longest register-to-register path: inc -> mux (2 cells)
        assert g.clock_period() == 2

    def test_clock_period_detects_combinational_cycle(self):
        g = RetimingGraph()
        g.vertices = [HOST, "a", "b"]
        g.delay = {HOST: 0, "a": 1, "b": 1}
        g.edges = [Edge("a", "b", 0), Edge("b", "a", 0)]
        with pytest.raises(RetimingGraphError):
            g.clock_period()

    def test_legality_and_apply(self, correlator_graph):
        lags = {HOST: 0, "a": 0, "b": 0, "c": 1}
        # c -> host would get weight 0 + 0 - 1 = -1: illegal
        assert not correlator_graph.is_legal(lags)
        lags_ok = {HOST: 0, "a": -1, "b": 0, "c": 0}
        # a's input edge host->a: 1 + (-1) - 0 = 0; a->b: 0 + 0 + 1 = 1: legal
        assert correlator_graph.is_legal(lags_ok)
        retimed = correlator_graph.apply(lags_ok)
        assert retimed.total_registers() == correlator_graph.total_registers()

    def test_apply_rejects_illegal(self, correlator_graph):
        with pytest.raises(RetimingGraphError):
            correlator_graph.apply({HOST: 0, "a": 0, "b": 0, "c": 1})

    def test_path_matrices(self, correlator_graph):
        W, D = correlator_graph.path_weight_matrices()
        assert W[("a", "c")] == 0
        assert D[("a", "c")] == 13  # 3 + 3 + 7
        assert W[(HOST, "a")] == 1

    def test_lags_from_cut(self, fig2_small):
        lags = lags_from_cut(fig2_small, ["inc"])
        assert lags["inc"] == -1
        assert lags[HOST] == 0
        with pytest.raises(RetimingGraphError):
            lags_from_cut(fig2_small, ["ghost"])


class TestAlgorithms:
    def test_min_period_improves_correlator(self, correlator_graph):
        before = correlator_graph.clock_period()
        period, lags = min_period_retiming(correlator_graph)
        assert period <= before
        assert correlator_graph.is_legal(lags)
        assert correlator_graph.apply(lags).clock_period() == period

    def test_feasible_period_none_when_impossible(self, correlator_graph):
        assert feasible_clock_period(correlator_graph, 1) is None

    def test_min_period_on_netlists(self):
        for netlist in (figure2(4), counter(4), fractional_multiplier(3)):
            g = graph_from_netlist(netlist)
            period, lags = min_period_retiming(g)
            assert period <= g.clock_period()
            assert g.is_legal(lags)

    def test_min_register_retiming_never_increases(self):
        g = graph_from_netlist(shift_register(4, width=1))
        lags = min_register_retiming(g)
        assert g.is_legal(lags)
        assert sum(g.retimed_weight(e, lags) for e in g.edges) <= g.total_registers()

    def test_forward_retimable_cells_graph(self, fig2_small):
        g = graph_from_netlist(fig2_small)
        cells = forward_retimable_cells(g)
        assert "inc" in cells
        assert "cmp" not in cells

    def test_forward_retiming_lags(self, fig2_small):
        g = graph_from_netlist(fig2_small)
        lags = forward_retiming_lags(g, ["inc"])
        assert lags["inc"] == -1
        assert g.is_legal(lags)

    def test_forward_retiming_lags_illegal(self, fig2_small):
        g = graph_from_netlist(fig2_small)
        with pytest.raises(RetimingInfeasible):
            forward_retiming_lags(g, ["cmp"])
