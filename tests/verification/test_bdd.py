"""Tests for the ROBDD package."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.verification.bdd import (
    FALSE,
    TRUE,
    BddBudgetExceeded,
    BddError,
    BddManager,
    build_from_table,
)

NAMES = ["a", "b", "c", "d"]


@pytest.fixture
def manager():
    m = BddManager()
    for name in NAMES:
        m.declare(name)
    return m


class TestBasics:
    def test_terminals(self, manager):
        assert manager.is_terminal(TRUE) and manager.is_terminal(FALSE)
        assert manager.apply_not(TRUE) == FALSE

    def test_variable_canonical(self, manager):
        assert manager.var("a") == manager.var("a")
        assert manager.var("a") != manager.var("b")

    def test_boolean_identities(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.apply_and(a, TRUE) == a
        assert manager.apply_or(a, FALSE) == a
        assert manager.apply_and(a, manager.apply_not(a)) == FALSE
        assert manager.apply_or(a, manager.apply_not(a)) == TRUE
        assert manager.apply_xor(a, a) == FALSE
        assert manager.apply_xnor(a, b) == manager.apply_not(manager.apply_xor(a, b))
        assert manager.apply_implies(FALSE, a) == TRUE

    def test_commutativity_canonical(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.apply_and(a, b) == manager.apply_and(b, a)
        assert manager.apply_or(a, b) == manager.apply_or(b, a)

    def test_conjoin_disjoin(self, manager):
        vs = [manager.var(n) for n in NAMES]
        allv = manager.conjoin(vs)
        assert manager.evaluate(allv, {n: True for n in NAMES})
        assert not manager.evaluate(allv, {"a": True, "b": True, "c": True, "d": False})
        anyv = manager.disjoin(vs)
        assert manager.evaluate(anyv, {"a": False, "b": False, "c": False, "d": True})

    def test_level_conflict(self):
        m = BddManager()
        m.declare("x", level=0)
        with pytest.raises(BddError):
            m.declare("y", level=0)


class TestOperations:
    def test_restrict(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_and(a, b)
        assert manager.restrict(f, "a", True) == b
        assert manager.restrict(f, "a", False) == FALSE

    def test_exists_forall(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_and(a, b)
        assert manager.exists(["a"], f) == b
        assert manager.forall(["a"], f) == FALSE
        assert manager.forall(["a"], manager.apply_or(a, manager.apply_not(a))) == TRUE

    def test_compose(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        f = manager.apply_xor(a, b)
        g = manager.compose(f, {"b": manager.apply_and(b, c)})
        expected = manager.apply_xor(a, manager.apply_and(b, c))
        assert g == expected

    def test_rename(self, manager):
        a, c = manager.var("a"), manager.var("c")
        f = manager.apply_and(a, manager.var("b"))
        renamed = manager.rename(f, {"a": "c"})
        assert renamed == manager.apply_and(c, manager.var("b"))

    def test_support(self, manager):
        f = manager.apply_or(manager.var("a"), manager.var("c"))
        assert manager.support(f) == {"a", "c"}

    def test_size_and_evaluate(self, manager):
        f = manager.apply_xor(manager.var("a"), manager.var("b"))
        assert manager.size(f) >= 2
        assert manager.evaluate(f, {"a": True, "b": False})
        assert not manager.evaluate(f, {"a": True, "b": True})

    def test_any_sat(self, manager):
        f = manager.apply_and(manager.var("a"), manager.apply_not(manager.var("b")))
        model = manager.any_sat(f)
        assert model["a"] is True and model["b"] is False
        assert manager.any_sat(FALSE) is None

    def test_count_sat(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_or(a, b)
        assert manager.count_sat(f, over=["a", "b"]) == 3
        assert manager.count_sat(TRUE, over=["a", "b"]) == 4
        with pytest.raises(BddError):
            manager.count_sat(f, over=["a"])

    def test_relational_product(self, manager):
        a, b = manager.var("a"), manager.var("b")
        rel = manager.apply_and(a, b)
        assert manager.relational_product(["a"], a, rel) == b

    def test_node_budget(self):
        m = BddManager(node_budget=8)
        with pytest.raises(BddBudgetExceeded):
            f = TRUE
            for i in range(6):
                f = m.apply_xor(f, m.declare(f"v{i}"))

    def test_deadline(self):
        import random
        import time

        m = BddManager()
        names = [f"w{i}" for i in range(12)]
        for name in names:
            m.declare(name)
        m.set_deadline(time.perf_counter() - 1.0)
        rng = random.Random(0)
        with pytest.raises(BddBudgetExceeded):
            # a random 12-variable function has hundreds of BDD nodes, enough
            # to trigger the periodic deadline check during construction
            build_from_table(m, names, lambda bits: rng.random() < 0.5)


# -- property-based: agreement with truth tables -------------------------------

@st.composite
def _formulas(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return ("var", draw(st.sampled_from(NAMES)))
    op = draw(st.sampled_from(["and", "or", "xor", "not", "ite"]))
    if op == "not":
        return ("not", draw(_formulas(depth + 1)))
    if op == "ite":
        return ("ite", draw(_formulas(depth + 1)), draw(_formulas(depth + 1)),
                draw(_formulas(depth + 1)))
    return (op, draw(_formulas(depth + 1)), draw(_formulas(depth + 1)))


def _eval_formula(formula, env):
    tag = formula[0]
    if tag == "var":
        return env[formula[1]]
    if tag == "not":
        return not _eval_formula(formula[1], env)
    if tag == "and":
        return _eval_formula(formula[1], env) and _eval_formula(formula[2], env)
    if tag == "or":
        return _eval_formula(formula[1], env) or _eval_formula(formula[2], env)
    if tag == "xor":
        return _eval_formula(formula[1], env) != _eval_formula(formula[2], env)
    if tag == "ite":
        return _eval_formula(formula[2] if _eval_formula(formula[1], env) else formula[3], env)
    raise AssertionError(tag)


def _build(manager, formula):
    tag = formula[0]
    if tag == "var":
        return manager.var(formula[1])
    if tag == "not":
        return manager.apply_not(_build(manager, formula[1]))
    if tag == "and":
        return manager.apply_and(_build(manager, formula[1]), _build(manager, formula[2]))
    if tag == "or":
        return manager.apply_or(_build(manager, formula[1]), _build(manager, formula[2]))
    if tag == "xor":
        return manager.apply_xor(_build(manager, formula[1]), _build(manager, formula[2]))
    if tag == "ite":
        return manager.ite(_build(manager, formula[1]), _build(manager, formula[2]),
                           _build(manager, formula[3]))
    raise AssertionError(tag)


@given(_formulas())
@settings(max_examples=80, deadline=None)
def test_property_bdd_matches_truth_table(formula):
    manager = BddManager()
    for name in NAMES:
        manager.declare(name)
    f = _build(manager, formula)
    reference = build_from_table(
        manager, NAMES, lambda bits: _eval_formula(formula, dict(zip(NAMES, bits)))
    )
    assert f == reference


@given(_formulas(), _formulas())
@settings(max_examples=40, deadline=None)
def test_property_canonicity(f1, f2):
    """Two formulas denote the same function iff their BDDs are identical."""
    manager = BddManager()
    for name in NAMES:
        manager.declare(name)
    b1, b2 = _build(manager, f1), _build(manager, f2)
    same_function = all(
        _eval_formula(f1, dict(zip(NAMES, bits))) == _eval_formula(f2, dict(zip(NAMES, bits)))
        for bits in __import__("itertools").product([False, True], repeat=len(NAMES))
    )
    assert (b1 == b2) == same_function
