"""Engine-level tests for the complement-edge iterative BDD package.

Pins the PR-4 rebuild of :mod:`repro.verification.bdd`:

* randomized differential tests against :func:`build_from_table` ground
  truth and brute-force truth sets;
* semantics-preserving invariants — negation involution, quantifier
  duality, ``count_sat`` totals, ``and_exists`` vs conjoin-then-quantify;
* O(1) negation verified through the deterministic operation counters
  (``apply_not`` must expand no subproblems and allocate no nodes);
* a >2000-level deep-BDD regression at the *default* recursion limit,
  mirroring ``tests/automata/test_deep_eval.py`` for the logic kernel;
* the clustered early-quantification image against the monolithic one.
"""

import itertools
import random
import sys

import pytest

from repro.circuits.generators import counter, random_sequential_circuit
from repro.verification import model_checking
from repro.verification.bdd import (
    FALSE,
    TRUE,
    BddBudgetExceeded,
    BddManager,
    build_from_table,
)
from repro.verification.common import declare_next_state_vars, product_fsm

NAMES = ["a", "b", "c", "d", "e", "f"]


def _random_function(manager, rng, names=NAMES):
    bits = [rng.random() < 0.5 for _ in range(1 << len(names))]

    def truth(assignment):
        idx = 0
        for value in assignment:
            idx = (idx << 1) | int(value)
        return bits[idx]

    return build_from_table(manager, names, truth), truth


def _truth_set(manager, f, names=NAMES):
    return {
        bits
        for bits in itertools.product([False, True], repeat=len(names))
        if manager.evaluate(f, dict(zip(names, bits)))
    }


@pytest.fixture
def manager():
    m = BddManager()
    for name in NAMES:
        m.declare(name)
    return m


class TestDifferential:
    """Randomized agreement with truth-table ground truth."""

    def test_binary_ops_match_truth_sets(self, manager):
        rng = random.Random(1)
        for _ in range(25):
            f, _ = _random_function(manager, rng)
            g, _ = _random_function(manager, rng)
            sf, sg = _truth_set(manager, f), _truth_set(manager, g)
            assert _truth_set(manager, manager.apply_and(f, g)) == sf & sg
            assert _truth_set(manager, manager.apply_or(f, g)) == sf | sg
            assert _truth_set(manager, manager.apply_xor(f, g)) == sf ^ sg
            assert _truth_set(manager, manager.apply_xnor(f, g)) == (
                set(itertools.product([False, True], repeat=len(NAMES))) - (sf ^ sg)
            )

    def test_ite_matches_truth_sets(self, manager):
        rng = random.Random(2)
        universe = set(itertools.product([False, True], repeat=len(NAMES)))
        for _ in range(25):
            f, _ = _random_function(manager, rng)
            g, _ = _random_function(manager, rng)
            h, _ = _random_function(manager, rng)
            sf, sg, sh = (_truth_set(manager, x) for x in (f, g, h))
            expected = (sf & sg) | ((universe - sf) & sh)
            assert _truth_set(manager, manager.ite(f, g, h)) == expected

    def test_canonicity_same_function_same_edge(self, manager):
        rng = random.Random(3)
        for _ in range(10):
            f, truth = _random_function(manager, rng)
            rebuilt = build_from_table(manager, NAMES, truth)
            assert rebuilt == f

    def test_restrict_compose_match_semantics(self, manager):
        rng = random.Random(4)
        for _ in range(15):
            f, _ = _random_function(manager, rng)
            g, _ = _random_function(manager, rng)
            sf, sg = _truth_set(manager, f), _truth_set(manager, g)
            name = rng.choice(NAMES)
            ti = NAMES.index(name)
            value = rng.choice([True, False])
            restricted = manager.restrict(f, name, value)
            expected = {
                bits
                for bits in itertools.product([False, True], repeat=len(NAMES))
                if tuple(list(bits[:ti]) + [value] + list(bits[ti + 1:])) in sf
            }
            assert _truth_set(manager, restricted) == expected
            composed = manager.compose(f, {name: g})
            expected = set()
            for bits in itertools.product([False, True], repeat=len(NAMES)):
                sub = list(bits)
                sub[ti] = bits in sg
                if tuple(sub) in sf:
                    expected.add(bits)
            assert _truth_set(manager, composed) == expected


class TestInvariants:
    """Algebraic invariants of the complement-edge representation."""

    def test_negation_involution(self, manager):
        rng = random.Random(5)
        for _ in range(20):
            f, _ = _random_function(manager, rng)
            assert manager.apply_not(manager.apply_not(f)) == f
            assert manager.apply_xnor(f, FALSE) == manager.apply_not(f)

    def test_apply_not_is_constant_time(self, manager):
        """O(1) negation: no subproblem expansions, no new nodes."""
        rng = random.Random(6)
        f, _ = _random_function(manager, rng)
        nodes_before = manager.num_nodes
        calls_before = manager.ite_calls
        hits_before = manager.cache_hits
        g = manager.apply_not(f)
        assert g == f ^ 1
        assert manager.apply_not(g) == f
        assert manager.num_nodes == nodes_before
        assert manager.ite_calls == calls_before
        assert manager.cache_hits == hits_before

    def test_negation_shares_nodes(self, manager):
        rng = random.Random(7)
        f, _ = _random_function(manager, rng)
        assert manager.size(manager.apply_not(f)) == manager.size(f)

    def test_quantifier_duality(self, manager):
        rng = random.Random(8)
        for _ in range(15):
            f, _ = _random_function(manager, rng)
            qs = rng.sample(NAMES, rng.randint(1, 4))
            assert manager.forall(qs, f) == manager.apply_not(
                manager.exists(qs, manager.apply_not(f))
            )
            # exists is monotone: f implies exists(f)
            assert manager.apply_implies(f, manager.exists(qs, f)) == TRUE

    def test_count_sat_totals(self, manager):
        rng = random.Random(9)
        total = 1 << len(NAMES)
        for _ in range(15):
            f, _ = _random_function(manager, rng)
            assert manager.count_sat(f) == len(_truth_set(manager, f))
            assert manager.count_sat(f) + manager.count_sat(manager.apply_not(f)) == total

    def test_and_exists_equals_exists_of_and(self, manager):
        rng = random.Random(10)
        for _ in range(20):
            f, _ = _random_function(manager, rng)
            g, _ = _random_function(manager, rng)
            qs = rng.sample(NAMES, rng.randint(1, 4))
            assert manager.and_exists(qs, f, g) == manager.exists(
                qs, manager.apply_and(f, g)
            )

    def test_operation_counters_deterministic(self):
        def run():
            m = BddManager()
            for name in NAMES:
                m.declare(name)
            rng = random.Random(11)
            f, _ = _random_function(m, rng)
            g, _ = _random_function(m, rng)
            m.apply_and(f, g)
            m.apply_xor(f, g)
            m.exists(NAMES[:3], f)
            return m.ite_calls, m.cache_hits, m.num_nodes

        assert run() == run()


class TestDeepBdd:
    """>2000-level BDDs at the default recursion limit (iterative core)."""

    WIDTH = 2500

    def test_deep_chain_operations(self):
        assert sys.getrecursionlimit() <= 3000, (
            "test must run at (or near) the default limit to be meaningful"
        )
        m = BddManager()
        names = [f"x{i}" for i in range(self.WIDTH)]
        for name in names:
            m.declare(name)
        # conjunction chain: one node per level, WIDTH levels deep
        f = m.conjoin(m.var(n) for n in names)
        assert m.size(f) == self.WIDTH
        # O(1) negation of a deep BDD, then a full traversal through it
        nf = m.apply_not(f)
        assert m.size(nf) == self.WIDTH
        assert m.evaluate(f, {n: True for n in names})
        assert not m.evaluate(f, {**{n: True for n in names}, names[-1]: False})
        # iterative ite/and: conjoin two deep chains shifted against each other
        g = m.conjoin(m.var(n) for n in names[1:])
        assert m.apply_and(f, g) == f
        assert m.apply_implies(f, g) == TRUE
        # iterative xor builds a deep result too
        x = m.apply_xor(f, m.var(names[0]))
        assert m.evaluate(x, {**{n: True for n in names}, names[1]: False})
        # iterative quantification across every second level
        half = names[0::2]
        ex = m.exists(half, f)
        assert ex == m.conjoin(m.var(n) for n in names[1::2])
        assert m.forall(half, ex) == ex
        # iterative compose: substitute TRUE into the deepest variable
        composed = m.compose(f, {names[-1]: TRUE})
        assert composed == m.conjoin(m.var(n) for n in names[:-1])
        # iterative count_sat on the full chain
        assert m.count_sat(f, over=names) == 1
        # and_exists through the whole chain
        assert m.and_exists(half, f, g) == ex

    def test_deep_restrict_and_support(self):
        m = BddManager()
        names = [f"y{i}" for i in range(self.WIDTH)]
        for name in names:
            m.declare(name)
        f = m.disjoin(m.nvar(n) for n in names)
        assert m.restrict(f, names[-1], False) == TRUE
        assert len(m.support(f)) == self.WIDTH

    def test_deep_build_from_table(self):
        # parity over many variables exercises the iterative table reduction
        m = BddManager()
        names = [f"p{i}" for i in range(14)]
        f = build_from_table(m, names, lambda bits: sum(bits) % 2 == 1)
        assert m.size(f) == len(names)  # parity is linear-sized with ⊕ sharing
        assert m.count_sat(f, over=names) == 1 << (len(names) - 1)


class TestBudgets:
    def test_deadline_checked_on_cache_hits(self):
        """A cache-hit-heavy loop must still honour the wall-clock budget."""
        import time

        m = BddManager()
        names = [f"w{i}" for i in range(14)]
        for name in names:
            m.declare(name)
        rng = random.Random(12)
        f = build_from_table(m, names, lambda bits: rng.random() < 0.5)
        g = build_from_table(m, names, lambda bits: rng.random() < 0.5)
        m.apply_and(f, g)  # warm the cache
        m.set_deadline(time.perf_counter() - 1.0)
        with pytest.raises(BddBudgetExceeded):
            # every subproblem is now a cache hit; the tick-based deadline
            # check must fire anyway within a bounded number of operations
            for _ in range(10_000):
                m.apply_and(f, g)
                m.clear_caches()

    def test_timeout_result_carries_stats(self):
        from repro.verification import van_eijk

        nl = random_sequential_circuit(seed=0, n_inputs=4, n_flipflops=8, n_gates=60)
        result = van_eijk.check_equivalence(nl, nl, time_budget=0.0)
        assert result.status == "timeout"
        assert result.stats.get("peak_nodes", 0) > 0
        assert "ite_calls" in result.stats

    def test_smv_timeout_result_carries_stats(self):
        nl = counter(12)
        result = model_checking.check_equivalence(nl, nl, time_budget=0.01)
        assert result.status == "timeout"
        assert result.stats.get("peak_nodes", 0) > 0


class TestPartitionedImage:
    """The clustered early-quantification image against ground truth."""

    def _reach(self, netlist, cluster_size):
        product = product_fsm(netlist, netlist)
        m = product.manager
        primed = declare_next_state_vars(product)
        relation = model_checking.build_transition_relation(
            product, primed, cluster_size=cluster_size
        )
        reached, iterations, _ = model_checking.forward_reachability(
            product, relation, primed
        )
        states = m.count_sat(reached, over=product.all_state_vars())
        return states, iterations, m.num_nodes

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clustered_image_matches_monolithic(self, seed):
        nl = random_sequential_circuit(
            seed=seed, n_inputs=3, n_flipflops=5, n_gates=20
        )
        mono_states, mono_iters, _ = self._reach(nl, cluster_size=None)
        clus_states, clus_iters, _ = self._reach(nl, cluster_size=150)
        assert (mono_states, mono_iters) == (clus_states, clus_iters)

    def test_counter_reachable_states(self):
        states, _, _ = self._reach(counter(6), cluster_size=1000)
        assert states == 1 << 6  # the 6-bit counter visits every state (paired)

    def test_schedule_covers_quantify_set_once(self):
        nl = counter(5)
        product = product_fsm(nl, nl)
        m = product.manager
        primed = declare_next_state_vars(product)
        relation = model_checking.build_transition_relation(product, primed,
                                                            cluster_size=50)
        scheduled = [v for step in relation.schedule for v in step]
        assert sorted(scheduled + relation.pre_quantified) == sorted(relation.quantify)
        assert len(set(scheduled)) == len(scheduled)
        # a scheduled variable never appears in a *later* cluster's support
        for i, step in enumerate(relation.schedule):
            for later in relation.clusters[i + 1:]:
                assert not (set(step) & m.support(later))
