"""Tests for counterexample certification (:mod:`repro.verification.common`).

Every ``not_equivalent`` verdict that leaves :func:`run_checker` must carry
a replay-certified witness: the counterexample is pushed through the cycle
simulator (an engine independent of BDDs/SAT/the kernel) and has to drive
the two circuits apart.  These tests pin that contract per backend — a real
injected fault yields ``cex_certified=1`` and a witness that replays — and
prove the demotion path with a deliberately buggy checker whose fabricated
witness must never survive certification.
"""

import pytest

from repro.circuits.generators import random_sequential_circuit
from repro.circuits.mutate import inject_visible_faults
from repro.verification.common import (
    VerificationResult,
    certify_result,
    replay_counterexample,
)
from repro.verification.registry import (
    get_checker,
    register_checker,
    run_checker,
    unregister_checker,
)

#: backends held to a certified witness on a plain (unretimed) faulted pair;
#: the cut-point family needs identical register sets, which this pair has
CEX_BACKENDS = ["smv", "sis", "sat", "fraig", "taut", "taut-rw"]


@pytest.fixture(scope="module")
def faulted_pair():
    """(circuit, visibly mutated circuit) with identical register sets."""
    base = random_sequential_circuit(4, 5, 24, seed=17)
    mutant, applied = inject_visible_faults(base, n=1, seed=17)
    assert applied
    return base, mutant


class TestCertifiedBackends:
    @pytest.mark.parametrize("method", CEX_BACKENDS)
    def test_fault_yields_certified_counterexample(self, method, faulted_pair):
        original, mutant = faulted_pair
        result = run_checker(method, original, mutant, time_budget=60.0)
        assert result.status == "not_equivalent"
        assert result.counterexample is not None
        assert result.stats.get("cex_certified") == 1.0
        distinguishes, diffs, _ = replay_counterexample(
            original, mutant, result.counterexample
        )
        assert distinguishes and diffs

    @pytest.mark.parametrize("method", CEX_BACKENDS)
    def test_certified_witness_is_total_and_sorted(self, method, faulted_pair):
        original, mutant = faulted_pair
        result = run_checker(method, original, mutant, time_budget=60.0)
        cex = result.counterexample
        assert list(cex) == sorted(cex)
        assert all(isinstance(v, bool) for v in cex.values())
        # total over the primary inputs: no don't-care holes left
        assert set(original.inputs) <= set(cex)


class TestReplay:
    def test_replay_completes_dont_cares(self, faulted_pair):
        original, mutant = faulted_pair
        result = run_checker("sis", original, mutant, time_budget=60.0)
        partial = dict(list(result.counterexample.items())[:1])
        _, _, completed = replay_counterexample(original, mutant, partial)
        assert set(original.inputs) <= set(completed)
        assert list(completed) == sorted(completed)

    def test_replay_rejects_nonwitness_on_equivalent_pair(self):
        base = random_sequential_circuit(3, 3, 12, seed=1)
        cex = {name: False for name in base.inputs}
        cex.update({f"cut.{name}": False for name in base.registers})
        distinguishes, diffs, _ = replay_counterexample(base, base.copy(), cex)
        assert not distinguishes and not diffs


class TestCertifyResult:
    def test_passes_through_non_refutations(self, faulted_pair):
        original, mutant = faulted_pair
        for status in ("equivalent", "timeout", "error"):
            result = VerificationResult(method="x", status=status, seconds=0.0)
            assert certify_result(result, original, mutant) is result

    def test_passes_through_witnessless_refutation(self, faulted_pair):
        original, mutant = faulted_pair
        result = VerificationResult(method="x", status="not_equivalent",
                                    seconds=0.0, counterexample=None)
        assert certify_result(result, original, mutant) is result
        assert "cex_certified" not in result.stats

    def test_bogus_witness_is_demoted(self):
        base = random_sequential_circuit(3, 3, 12, seed=1)
        clone = base.copy()
        bogus = {name: False for name in base.inputs}
        bogus.update({f"cut.{name}": False for name in base.registers})
        result = VerificationResult(method="x", status="not_equivalent",
                                    seconds=0.1, counterexample=dict(bogus))
        demoted = certify_result(result, base, clone)
        assert demoted.status == "error"
        assert demoted.counterexample is None
        assert demoted.stats["cex_certified"] == 0.0
        assert "uncertified counterexample" in demoted.detail

    def test_spurious_keys_dropped_from_certified_witness(self, faulted_pair):
        # junk keys are ignored by replay; the all-False completion happens
        # to distinguish this (genuinely inequivalent) pair, so the witness
        # certifies — but only in its completed, junk-free total form
        original, mutant = faulted_pair
        result = VerificationResult(
            method="x", status="not_equivalent", seconds=0.0,
            counterexample={"no_such_signal": True},
        )
        out = certify_result(result, original, mutant)
        assert out.status == "not_equivalent"
        assert out.stats["cex_certified"] == 1.0
        assert "no_such_signal" not in out.counterexample
        assert set(original.inputs) <= set(out.counterexample)

    def test_replay_exception_is_demoted(self, faulted_pair, monkeypatch):
        import repro.verification.common as common

        def _boom(*args, **kwargs):
            raise RuntimeError("simulator exploded")

        monkeypatch.setattr(common, "replay_counterexample", _boom)
        original, mutant = faulted_pair
        result = VerificationResult(method="x", status="not_equivalent",
                                    seconds=0.0, counterexample={"a": True})
        demoted = common.certify_result(result, original, mutant)
        assert demoted.status == "error"
        assert demoted.stats["cex_certified"] == 0.0
        assert "replay raised RuntimeError" in demoted.detail


class TestRegistryIntegration:
    """run_checker certifies centrally, so even a buggy backend cannot leak
    an uncertified refutation to the evaluation layer."""

    def test_buggy_checker_is_caught_by_run_checker(self):
        base = random_sequential_circuit(3, 3, 12, seed=6)
        clone = base.copy()

        def _bogus(original, retimed, time_budget=None):
            cex = {name: False for name in original.inputs}
            cex.update({f"cut.{name}": False for name in original.registers})
            return VerificationResult(method="bogus-cert",
                                      status="not_equivalent",
                                      seconds=0.0, counterexample=cex,
                                      detail="fabricated witness")

        register_checker("bogus-cert", _bogus, accepts=("time_budget",),
                         replace=True)
        try:
            result = run_checker("bogus-cert", base, clone, time_budget=5.0)
        finally:
            unregister_checker("bogus-cert")
        assert result.status == "error"
        assert result.counterexample is None
        assert result.stats["cex_certified"] == 0.0

    def test_checker_metadata_exposed(self):
        assert get_checker("taut").cut_points
        assert get_checker("sat").cut_points
        assert get_checker("fraig").cut_points
        assert not get_checker("smv").cut_points
        assert not get_checker("eijk").complete
        assert not get_checker("match").complete
        assert get_checker("sis").complete
