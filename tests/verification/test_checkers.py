"""Tests for the post-synthesis verification baselines."""

import pytest

from repro.circuits.generators import counter, figure2, figure2_retimed, fractional_multiplier
from repro.circuits.netlist import Netlist, Register
from repro.retiming.apply import apply_forward_retiming
from repro.retiming.cuts import maximal_forward_cut
from repro.verification import (
    fsm_compare,
    model_checking,
    retiming_verify,
    tautology,
    van_eijk,
)
from repro.verification.common import (
    VerificationError,
    compile_fsm,
    ensure_gate_level,
    product_fsm,
)


def _corrupt_init(netlist: Netlist, reg_name: str, new_init: int) -> Netlist:
    out = netlist.copy(netlist.name + "_corrupt")
    reg = out.registers[reg_name]
    out.registers[reg_name] = Register(reg.name, reg.input, reg.output,
                                       init=new_init, width=reg.width)
    return out


@pytest.fixture(scope="module")
def fig_pair():
    return figure2(3), figure2_retimed(3)


class TestCommonInfrastructure:
    def test_compile_fsm_matches_simulation(self, fig2_small):
        from repro.circuits.simulate import Simulator, random_input_sequence

        gate = ensure_gate_level(fig2_small)
        fsm = compile_fsm(gate)
        sim = Simulator(gate)
        for vec in random_input_sequence(gate, 12, seed=3):
            values = sim.evaluate_combinational(vec)
            assignment = {name: bool(vec[name]) for name in gate.inputs}
            assignment.update({name: bool(sim.state[reg]) for reg, name in
                               zip(gate.registers, fsm.state_vars)})
            for out, fn in fsm.output_fns.items():
                assert fsm.manager.evaluate(fn, assignment) == bool(values[out])
            sim.step(vec)

    def test_product_fsm_interface_mismatch(self, fig2_small):
        with pytest.raises(VerificationError):
            product_fsm(fig2_small, counter(3))

    def test_ensure_gate_level_idempotent(self, fig2_small):
        gate = ensure_gate_level(fig2_small)
        assert ensure_gate_level(gate) is gate


class TestModelChecking:
    def test_equivalent_pair(self, fig_pair):
        result = model_checking.check_equivalence(*fig_pair, time_budget=60)
        assert result.status == "equivalent"
        assert result.iterations > 0

    def test_detects_wrong_initial_value(self, fig_pair):
        original, retimed = fig_pair
        broken = _corrupt_init(retimed, "D1", 0)
        result = model_checking.check_equivalence(original, broken, time_budget=60)
        assert result.status == "not_equivalent"
        assert result.counterexample is not None

    def test_timeout_reported(self):
        original = figure2(16)
        retimed = apply_forward_retiming(original, ["inc"])
        result = model_checking.check_equivalence(original, retimed, time_budget=0.2)
        assert result.status == "timeout"

    def test_reachable_state_count_counter(self):
        # free-running 3-bit counter visits all 8 states
        c = counter(3, enable=False)
        assert model_checking.reachable_state_count(c) == 8


class TestFsmCompare:
    def test_equivalent_pair(self, fig_pair):
        result = fsm_compare.check_equivalence(*fig_pair, time_budget=60)
        assert result.status == "equivalent"

    def test_detects_difference(self, fig_pair):
        original, retimed = fig_pair
        broken = _corrupt_init(retimed, "D0", 1)
        result = fsm_compare.check_equivalence(original, broken, time_budget=60)
        assert result.status == "not_equivalent"

    def test_agrees_with_smv(self):
        original = counter(3)
        retimed = apply_forward_retiming(original, maximal_forward_cut(original))
        a = fsm_compare.check_equivalence(original, retimed, time_budget=60)
        b = model_checking.check_equivalence(original, retimed, time_budget=60)
        assert a.status == b.status == "equivalent"


class TestVanEijk:
    def test_equivalent_pair(self, fig_pair):
        result = van_eijk.check_equivalence(*fig_pair, time_budget=60)
        assert result.status == "equivalent"

    def test_plus_variant_merges_registers(self, fig_pair):
        result = van_eijk.check_equivalence(*fig_pair, exploit_dependencies=True,
                                            time_budget=60)
        assert result.status == "equivalent"
        assert "dependent registers eliminated" in result.detail

    def test_detects_wrong_initial_value(self, fig_pair):
        original, retimed = fig_pair
        broken = _corrupt_init(retimed, "D1", 0)
        result = van_eijk.check_equivalence(original, broken, time_budget=60)
        assert result.status != "equivalent"

    def test_multiplier_pair(self):
        original = fractional_multiplier(3)
        retimed = apply_forward_retiming(original, ["shifter"])
        result = van_eijk.check_equivalence(original, retimed, time_budget=60)
        assert result.status == "equivalent"


class TestTautology:
    def _combinational(self, value: bool) -> Netlist:
        nl = Netlist("taut")
        nl.add_input("a", 1)
        nl.add_cell("na", "NOT", ["a"], "na")
        nl.add_cell("orr", "OR" if value else "AND", ["a", "na"], "y")
        nl.add_output("y", 1)
        return nl

    def test_is_tautology(self):
        assert tautology.is_tautology(self._combinational(True))
        assert not tautology.is_tautology(self._combinational(False))

    def test_is_tautology_rejects_sequential(self, fig2_small):
        with pytest.raises(ValueError):
            tautology.is_tautology(fig2_small)

    def test_combinational_equivalence_same_registers(self, fig2_small):
        # identical circuits are equivalent under the cut-point abstraction
        result = tautology.combinational_equivalent(fig2_small, figure2(3))
        assert result.status == "equivalent"

    def test_combinational_equivalence_limitation(self, fig_pair):
        # retimed circuits have a *different* state representation, so the
        # tautology-checking approach cannot prove them equivalent (Section II)
        result = tautology.combinational_equivalent(*fig_pair)
        assert result.status == "not_equivalent"


class TestTautologyByRewriting:
    """The kernel-checked variants on the worklist rewrite engine."""

    def _combinational(self, value: bool) -> Netlist:
        nl = Netlist("taut")
        nl.add_input("a", 1)
        nl.add_cell("na", "NOT", ["a"], "na")
        nl.add_cell("orr", "OR" if value else "AND", ["a", "na"], "y")
        nl.add_output("y", 1)
        return nl

    def test_is_tautology_by_rewriting(self):
        assert tautology.is_tautology_by_rewriting(self._combinational(True))
        assert not tautology.is_tautology_by_rewriting(self._combinational(False))

    def test_rejects_sequential_and_oversized(self, fig2_small):
        with pytest.raises(ValueError):
            tautology.is_tautology_by_rewriting(fig2_small)
        wide = self._combinational(True)
        with pytest.raises(ValueError):
            tautology.is_tautology_by_rewriting(wide, max_vectors=1)

    def test_equivalence_agrees_with_bdd_checker(self, fig2_small):
        rw = tautology.combinational_equivalent_by_rewriting(fig2_small, figure2(3))
        bdd = tautology.combinational_equivalent(fig2_small, figure2(3))
        assert rw.status == bdd.status == "equivalent"
        assert "kernel-checked" in rw.detail

    def test_limitation_matches_the_bdd_checker(self, fig_pair):
        # same cut-point discipline, same Section-II limitation
        rw = tautology.combinational_equivalent_by_rewriting(*fig_pair)
        assert rw.status == "not_equivalent"

    def test_detects_a_real_mismatch_with_counterexample(self):
        good = self._combinational(True)
        bad = self._combinational(False)
        result = tautology.combinational_equivalent_by_rewriting(good, bad)
        assert result.status == "not_equivalent"
        assert result.counterexample is not None

    def test_budget_overrun_reports_timeout(self, fig2_small):
        result = tautology.combinational_equivalent_by_rewriting(
            fig2_small, figure2(3), max_vectors=2
        )
        assert result.status == "timeout"

    def _two_output(self, flipped: bool) -> Netlist:
        nl = Netlist("two_out")
        nl.add_input("a", 1)
        nl.add_cell("na", "NOT", ["a"], "y")
        nl.add_cell("bb", "BUF", ["a"], "z")
        for name in (("z", "y") if flipped else ("y", "z")):
            nl.add_output(name, 1)
        return nl

    def test_outputs_matched_by_name_not_declaration_order(self):
        # identical circuits whose outputs are declared in different order
        # must agree with the BDD checker (which compares by name)
        a, b = self._two_output(False), self._two_output(True)
        rw = tautology.combinational_equivalent_by_rewriting(a, b)
        bdd = tautology.combinational_equivalent(a, b)
        assert rw.status == bdd.status == "equivalent"

    def test_missing_output_is_reported(self):
        a = self._two_output(False)
        b = Netlist("one_out")
        b.add_input("a", 1)
        b.add_cell("na", "NOT", ["a"], "y")
        b.add_output("y", 1)
        result = tautology.combinational_equivalent_by_rewriting(a, b)
        assert result.status == "not_equivalent"
        assert "output z present in only one circuit" in result.detail


class TestRetimingVerify:
    def test_accepts_conventional_retiming(self, fig2_small):
        retimed = apply_forward_retiming(fig2_small, ["inc"])
        result = retiming_verify.check_equivalence(fig2_small, retimed)
        assert result.status == "equivalent"

    def test_rejects_wrong_initial_value(self, fig2_small):
        retimed = apply_forward_retiming(fig2_small, ["inc"])
        broken = _corrupt_init(retimed, "R_inc", 0)
        result = retiming_verify.check_equivalence(fig2_small, broken)
        assert result.status == "not_equivalent"

    def test_inconclusive_on_resynthesis(self, fig2_small):
        # change the logic (not just registers): the specialised verifier
        # must give up, as the paper notes it is limited to pure retiming
        other = figure2(3)
        other.remove_cell("outbuf")
        other.add_cell("outbuf", "OR", ["d0_out", "d0_out"], "y")
        result = retiming_verify.check_equivalence(fig2_small, other)
        assert result.status == "inconclusive"

    def test_rejects_structurally_unrelated(self, fig2_small):
        result = retiming_verify.check_equivalence(fig2_small, counter(3))
        assert result.status in ("inconclusive", "not_equivalent")

    def test_connection_graph_and_lags(self, fig2_small):
        retimed = apply_forward_retiming(fig2_small, ["inc"])
        edges_a = retiming_verify.connection_graph(fig2_small)
        edges_b = retiming_verify.connection_graph(retimed)
        lags = retiming_verify.recover_lags(edges_a, edges_b)
        assert lags is not None
        assert lags["inc"] == -1


class TestCrossMethodAgreement:
    @pytest.mark.parametrize("width", [2, 3])
    def test_all_methods_accept_true_retiming(self, width):
        original = figure2(width)
        retimed = apply_forward_retiming(original, ["inc"])
        for checker in (
            lambda: model_checking.check_equivalence(original, retimed, time_budget=60),
            lambda: fsm_compare.check_equivalence(original, retimed, time_budget=60),
            lambda: van_eijk.check_equivalence(original, retimed, time_budget=60),
            lambda: retiming_verify.check_equivalence(original, retimed),
        ):
            assert checker().status == "equivalent"

    def test_all_methods_reject_corrupted_retiming(self):
        original = figure2(2)
        retimed = apply_forward_retiming(original, ["inc"])
        broken = _corrupt_init(retimed, "R_inc", 3)
        for checker in (
            lambda: model_checking.check_equivalence(original, broken, time_budget=60),
            lambda: fsm_compare.check_equivalence(original, broken, time_budget=60),
            lambda: van_eijk.check_equivalence(original, broken, time_budget=60),
            lambda: retiming_verify.check_equivalence(original, broken),
        ):
            assert checker().status != "equivalent"
