"""The incremental SAT layer: assumptions, cores, GC, lazy cones, splitting.

Covers the persistent-solver machinery behind the ``sat``/``fraig``
backends:

* ``solve(assumptions=[...])`` agrees with a fresh encode-and-solve on
  randomized CNFs and randomized AIG miters, across many queries against
  ONE persistent solver (the whole point of the incremental rework);
* unsat cores are subsets of the assumptions and stay UNSAT when re-posed;
* the wall-clock deadline is polled inside the propagation hot loop, so a
  propagation-heavy instance dashes on time (the satellite bugfix);
* Luby restarts and LBD-scored learned-clause GC keep verdicts and models
  correct while actually deleting clauses;
* >2000-node cones Tseitin-encode lazily at the default recursion limit;
* the FRAIG in-place class partition refines exactly like a
  rebuild-from-scratch of the phase-canonical signature buckets.
"""

import random
import sys
import time

import pytest

from repro.circuits.aig import Aig, lit_negated, lit_node
from repro.verification.common import TimeoutBudgetExceeded
from repro.verification.fraig import _ClassPartition
from repro.verification.sat import IncrementalMiter, SatSolver, tseitin_solver


def _random_cnf(rng, nv, nc):
    return [
        [rng.choice([-1, 1]) * rng.randint(1, nv)
         for _ in range(rng.randint(1, 3))]
        for _ in range(nc)
    ]


def _brute_force_sat(nv, clauses, forced=()):
    want = list(clauses) + [[l] for l in forced]
    return any(
        all(any((l > 0) == bool((m >> (abs(l) - 1)) & 1) for l in c)
            for c in want)
        for m in range(1 << nv)
    )


class TestAssumptions:
    def test_differential_vs_fresh_solver(self):
        """One persistent solver, many assumption queries, vs brute force.

        Each CNF gets a single solver that answers ten different
        assumption sets in a row — learned clauses and activities carry
        over — and every answer must match both an exhaustive check and a
        throwaway solver with the assumptions baked in as unit clauses.
        """
        rng = random.Random(2024)
        for trial in range(40):
            nv = rng.randint(2, 7)
            clauses = _random_cnf(rng, nv, rng.randint(1, 20))
            persistent = SatSolver(nv)
            for c in clauses:
                persistent.add_clause(c)
            if persistent.unsat or not persistent.solve():
                continue  # permanently UNSAT: assumptions add nothing
            for _ in range(10):
                assumptions = [
                    rng.choice([-1, 1]) * v
                    for v in rng.sample(range(1, nv + 1),
                                        rng.randint(1, nv))
                ]
                got = persistent.solve(assumptions=assumptions)
                want = _brute_force_sat(nv, clauses, assumptions)
                assert got == want, (trial, clauses, assumptions)
                fresh = SatSolver(nv)
                for c in clauses:
                    fresh.add_clause(c)
                for l in assumptions:
                    fresh.add_clause([l])
                assert fresh.solve() == want, (trial, clauses, assumptions)
                if got:
                    model = persistent.model()
                    for l in assumptions:
                        assert model.get(abs(l), False) == (l > 0)
                    for c in clauses:
                        assert any((l > 0) == model.get(abs(l), False)
                                   for l in c)
            # the queries must not have poisoned the base problem
            assert persistent.solve() is True, (trial, clauses)

    def test_contradictory_assumptions(self):
        s = SatSolver(3)
        s.add_clause([1, 2])
        assert s.solve(assumptions=[3, -3]) is False
        assert set(s.unsat_core()) <= {3, -3}
        assert s.solve() is True  # the database itself is untouched

    def test_assumption_out_of_range(self):
        s = SatSolver(2)
        s.add_clause([1, 2])
        with pytest.raises(Exception):
            s.solve(assumptions=[5])


class TestUnsatCore:
    def test_core_subset_and_still_unsat(self):
        """core ⊆ assumptions, and re-solving under the core stays UNSAT."""
        rng = random.Random(99)
        unsat_cases = 0
        for trial in range(60):
            nv = rng.randint(2, 6)
            clauses = _random_cnf(rng, nv, rng.randint(3, 18))
            s = SatSolver(nv)
            for c in clauses:
                s.add_clause(c)
            if s.unsat or not s.solve():
                continue
            assumptions = [
                rng.choice([-1, 1]) * v
                for v in rng.sample(range(1, nv + 1), rng.randint(1, nv))
            ]
            if s.solve(assumptions=assumptions):
                continue
            unsat_cases += 1
            core = s.unsat_core()
            assert core, (trial, clauses, assumptions)
            assert set(core) <= set(assumptions), (trial, core, assumptions)
            # the persistent solver itself, re-posed under just the core
            assert s.solve(assumptions=core) is False, (trial, core)
            # and an unrelated fresh solver agrees the core suffices
            fresh = SatSolver(nv)
            for c in clauses:
                fresh.add_clause(c)
            for l in core:
                fresh.add_clause([l])
            assert fresh.solve() is False, (trial, clauses, core)
        assert unsat_cases >= 10  # the seed must actually exercise cores


class TestDeadlinePolling:
    def test_propagation_heavy_instance_dashes_on_time(self):
        """The deadline is honoured inside one giant watch-list scan.

        20k copies of the same binary clause put 20k entries on one watch
        list, while the whole solve needs only two propagations — so a
        per-propagation (or per-decision) deadline check never fires.
        Only the in-loop poll added by this fix can see the expired
        deadline, and it must raise rather than return SAT.
        """
        s = SatSolver(2)
        for _ in range(20000):
            s.add_clause([-1, 2])
        s.add_clause([1])
        with pytest.raises(TimeoutBudgetExceeded):
            s.solve(deadline=time.perf_counter() - 1.0)

    def test_no_deadline_means_no_timeout(self):
        s = SatSolver(2)
        for _ in range(20000):
            s.add_clause([-1, 2])
        s.add_clause([1])
        assert s.solve() is True


class TestRestartsAndClauseGC:
    def test_unsat_verdict_survives_aggressive_gc(self):
        """Pigeonhole: hundreds of conflicts under a tiny clause budget."""
        pigeons, holes = 6, 5
        s = SatSolver(pigeons * holes)
        s.learned_limit = 10
        s.restart_base = 4
        for p in range(pigeons):
            s.add_clause([p * holes + h + 1 for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-(p1 * holes + h + 1),
                                  -(p2 * holes + h + 1)])
        assert s.solve() is False
        assert s.restarts > 0
        assert s.learned_deleted > 0
        stats = s.stats()
        assert stats["restarts"] == float(s.restarts)
        assert stats["learned_deleted"] == float(s.learned_deleted)
        assert stats["learned_kept"] >= 0.0

    def test_model_valid_after_gc(self):
        """A satisfiable instance stays correctly answered through GC."""
        rng = random.Random(1)
        nv = 50
        clauses = [
            [rng.choice([-1, 1]) * v for v in rng.sample(range(1, nv + 1), 3)]
            for _ in range(210)
        ]
        s = SatSolver(nv)
        s.learned_limit = 5
        s.restart_base = 2
        for c in clauses:
            s.add_clause(c)
        assert s.solve() is True
        assert s.restarts > 0
        assert s.learned_deleted > 0  # GC actually ran
        model = s.model()
        for c in clauses:
            assert any((l > 0) == model.get(abs(l), False) for l in c)


class TestIncrementalMiter:
    def _random_aig(self, rng, n_inputs=5, n_gates=40):
        aig = Aig("rnd")
        pool = [aig.add_input(f"i{k}") for k in range(n_inputs)]
        for _ in range(n_gates):
            a = rng.choice(pool) ^ rng.getrandbits(1)
            b = rng.choice(pool) ^ rng.getrandbits(1)
            lit = aig.mk_xor(a, b) if rng.random() < 0.4 else aig.mk_and(a, b)
            pool.append(lit)
        return aig, pool

    def test_prove_equal_differential_vs_eager_encoder(self):
        """Persistent activation-literal miters vs fresh encode-and-solve.

        Thirty queries run against ONE IncrementalMiter per AIG — proved
        biconditionals and learned clauses accumulate — and each verdict
        must match a throwaway eager Tseitin solver on the XOR miter.
        Refuting models must actually separate the pair on the AIG.
        """
        rng = random.Random(31337)
        for trial in range(12):
            aig, pool = self._random_aig(rng)
            layer = IncrementalMiter(aig)
            inputs = list(aig.inputs)
            for _ in range(30):
                la, lb = rng.choice(pool), rng.choice(pool)
                model = layer.prove_equal(la, lb)
                miter_lit = aig.mk_xor(la, lb)
                if miter_lit == 0:
                    expect_equal = True
                elif miter_lit == 1:
                    expect_equal = False
                else:
                    fresh = tseitin_solver(aig, [miter_lit])
                    expect_equal = not fresh.solve()
                assert (model is None) == expect_equal, (trial, la, lb)
                if model is not None:
                    # replay the model on the AIG: the pair must differ
                    vec = {n: int(model.get(n, False)) for n in inputs}
                    vals = aig.eval_words(vec, 1)
                    va = (vals[lit_node(la)] & 1) ^ int(lit_negated(la))
                    vb = (vals[lit_node(lb)] & 1) ^ int(lit_negated(lb))
                    assert va != vb, (trial, la, lb, vec)

    def test_complementary_literals_on_unencoded_cone(self):
        """Regression: ``prove_equal(l, ~l)`` as the FIRST query.

        The complement fast path used to project the decision variables
        onto a cone that was never Tseitin-encoded (nothing had called
        ``lit()`` yet), which raised ``KeyError`` instead of refuting —
        found by ``repro fuzz`` via a BUF->NOT gate swap whose strashed
        rebuild makes the two outputs structural complements.
        """
        aig = Aig("compl")
        x = aig.add_input("x")
        y = aig.add_input("y")
        conj = aig.mk_and(x, y)
        layer = IncrementalMiter(aig)
        model = layer.prove_equal(conj, conj ^ 1)
        assert model is not None  # complements always differ
        # the cone was encoded on demand and the model assigns all of it
        assert lit_node(conj) in model
        assert all(n in model for n in aig.inputs)
        # and the shared solver is still healthy for ordinary queries
        assert layer.prove_equal(conj, aig.mk_and(x, y)) is None

    def test_encoding_is_lazy_and_dense(self):
        aig = Aig("lazy")
        x = aig.add_input("x")
        y = aig.add_input("y")
        left = aig.mk_and(x, y)
        for k in range(100):  # a large cone the query never touches
            left = aig.mk_and(left, aig.add_input(f"pad{k}"))
        small = aig.mk_and(x, y ^ 1)
        layer = IncrementalMiter(aig)
        layer.prove_equal(aig.mk_and(x, y), small)
        # only the two tiny cones got variables, not the 100-input tower
        assert layer.vars_encoded <= 6
        assert layer.solver.num_vars < aig.num_nodes

    def test_deep_cone_lazily_encoded_at_default_recursion_limit(self):
        """A >2000-node XOR chain encodes and solves iteratively."""
        limit = sys.getrecursionlimit()
        aig = Aig("deep")
        xs = [aig.add_input(f"x{k}") for k in range(2101)]
        acc = xs[0]
        for lit in xs[1:]:
            acc = aig.mk_xor(acc, lit)
        layer = IncrementalMiter(aig)
        assert layer.solve([acc]) is True  # some odd-parity vector exists
        assert layer.vars_encoded > 2000
        model = layer.model()
        parity = 0
        for n in aig.inputs:
            parity ^= int(model.get(n, False))
        assert parity == 1
        assert sys.getrecursionlimit() == limit


class TestClassPartition:
    @staticmethod
    def _rebuild(nodes, sig, nbits):
        """The old rebuild-from-scratch phase-canonical bucketing."""
        mask = (1 << nbits) - 1
        buckets = {}
        for n in nodes:
            word = sig[n]
            phase = word & 1
            canonical = word ^ mask if phase else word
            buckets.setdefault(canonical, []).append((n, phase))
        return {frozenset(g) for g in buckets.values() if len(g) >= 2}

    def test_split_in_place_matches_rebuild(self):
        """Feeding patterns one at a time == rebucketing the full words."""
        rng = random.Random(4242)
        for trial in range(25):
            n_nodes = rng.randint(4, 60)
            nbits = rng.randint(2, 16)
            nodes = list(range(n_nodes))
            full = {n: rng.getrandbits(nbits) for n in nodes}
            # start from the 1-bit partition, then split bit by bit
            first = {n: full[n] & 1 for n in nodes}
            part = _ClassPartition.from_signatures(nodes, first, 1)
            for t in range(1, nbits):
                vals = [(full[n] >> t) & 1 for n in nodes]
                part.split(vals)
            got = {
                frozenset(g) for g in part.classes if len(g) >= 2
            }
            want = self._rebuild(nodes, full, nbits)
            assert got == want, (trial, full)

    def test_split_preserves_relative_phases(self):
        # two nodes equal up to complement stay classed with their phases
        nodes = [0, 1, 2]
        sig = {0: 0b0, 1: 0b1, 2: 0b0}
        part = _ClassPartition.from_signatures(nodes, sig, 1)
        assert part.classes == [[(0, 0), (1, 1), (2, 0)]]
        # a pattern where node2 stops tracking node0 (xor phase)
        part.split([0, 1, 1])
        assert [(0, 0), (1, 1)] in part.classes
        assert [(2, 0)] in part.classes
        assert part.classes_split == 1

    def test_no_split_on_agreeing_pattern(self):
        nodes = [0, 1]
        part = _ClassPartition.from_signatures(nodes, {0: 0, 1: 0}, 1)
        part.split([1, 1])
        assert part.classes == [[(0, 0), (1, 0)]]
        assert part.classes_split == 0
