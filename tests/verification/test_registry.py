"""Tests for the declarative verification-backend registry."""

import pytest

from repro.circuits.generators import figure2, figure2_retimed
from repro.verification.common import VerificationError, VerificationResult
from repro.verification.registry import (
    available_checkers,
    get_checker,
    register_checker,
    run_checker,
    unregister_checker,
)

BUILTIN_BACKENDS = ["eijk", "eijk+", "hash", "match", "sis", "smv", "taut", "taut-rw"]


@pytest.fixture(scope="module")
def fig_pair():
    return figure2(3), figure2_retimed(3)


class TestRegistryContents:
    def test_all_builtin_backends_registered(self):
        assert set(BUILTIN_BACKENDS) <= set(available_checkers())

    def test_unknown_backend_raises_with_known_list(self):
        with pytest.raises(KeyError, match="unknown verification backend"):
            get_checker("nope")
        with pytest.raises(KeyError, match="smv"):
            get_checker("nope")

    def test_hash_is_a_synthesis_backend(self):
        checker = get_checker("hash")
        assert checker.kind == "synthesis"
        assert checker.needs_cut

    def test_verifiers_declare_their_budget_kwargs(self):
        assert "node_budget" in get_checker("smv").accepts
        assert "node_budget" not in get_checker("match").accepts
        assert "time_budget" in get_checker("match").accepts


class TestDispatch:
    def test_run_checker_filters_unsupported_kwargs(self, fig_pair):
        # `match` does not take node_budget; the registry must drop it
        result = run_checker("match", *fig_pair, time_budget=30,
                             node_budget=12345)
        assert result.status == "equivalent"

    def test_smv_reports_structured_stats(self, fig_pair):
        result = run_checker("smv", *fig_pair, time_budget=30)
        assert result.status == "equivalent"
        assert result.stats["iterations"] >= 1
        assert result.stats["peak_nodes"] > 0
        assert result.stats["wall_seconds"] == pytest.approx(result.seconds)

    def test_taut_rw_reports_kernel_steps(self):
        a, b = figure2(2), figure2(2)
        result = run_checker("taut-rw", a, b, time_budget=60)
        assert result.status == "equivalent"
        assert result.stats["kernel_steps"] > 0
        assert result.stats["vectors"] > 0

    def test_hash_through_registry(self, fig_pair):
        original, _ = fig_pair
        result = run_checker("hash", original, original, cut=["inc"])
        assert result.status == "equivalent"
        assert result.stats["kernel_steps"] > 0

    def test_hash_without_cut_raises(self, fig_pair):
        with pytest.raises(VerificationError, match="cut"):
            run_checker("hash", *fig_pair)


class TestRegistration:
    def test_register_is_a_one_site_change(self, fig_pair):
        @register_checker("tmp-backend", description="a test stub",
                          accepts=("time_budget",))
        def stub(original, retimed, time_budget=None):
            return VerificationResult(method="tmp-backend", status="equivalent",
                                      seconds=0.01, detail="stubbed")

        try:
            assert "tmp-backend" in available_checkers()
            result = run_checker("tmp-backend", *fig_pair, time_budget=1)
            assert result.status == "equivalent"
        finally:
            unregister_checker("tmp-backend")
        assert "tmp-backend" not in available_checkers()

    def test_duplicate_registration_rejected(self):
        def stub(a, b, **kw):
            raise AssertionError("never called")

        register_checker("tmp-dup", stub)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_checker("tmp-dup", stub)
            register_checker("tmp-dup", stub, replace=True)  # explicit override ok
        finally:
            unregister_checker("tmp-dup")
