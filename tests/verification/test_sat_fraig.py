"""Tests for the AIG/SAT equivalence backend family (`sat`, `fraig`).

The acceptance criterion of the AIG refactor: the ``sat`` and ``fraig``
backends must produce verdicts identical to the BDD ``taut`` backend on
every Table I/II combinational cell, and on randomized miters.  Also
covers the CDCL-lite solver itself (differential against brute force),
the tautology AIG path, deep-cone CNF at the default recursion limit, and
the structured ``decisions``/``propagations``/``conflicts``/``aig_nodes``
counters.
"""

import random
import sys

import pytest

from repro.circuits.bitblast import bitblast
from repro.circuits.generators import figure2, random_sequential_circuit
from repro.circuits.netlist import Cell, Netlist
from repro.eval.workloads import table1_workload, table2_workloads
from repro.verification import tautology
from repro.verification.fraig import check_equivalence_fraig
from repro.verification.registry import run_checker
from repro.verification.sat import (
    SatSolver,
    check_equivalence_sat,
    is_tautology_sat,
)


class TestSolver:
    def test_trivial(self):
        s = SatSolver(2)
        s.add_clause([1])
        s.add_clause([-1, 2])
        assert s.solve()
        assert s.model() == {1: True, 2: True}

    def test_empty_clause_is_unsat(self):
        s = SatSolver(1)
        s.add_clause([])
        assert not s.solve()

    def test_contradicting_units(self):
        s = SatSolver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve()

    def test_pigeonhole_2_into_1(self):
        # two pigeons, one hole: x1, x2, not both -> UNSAT
        s = SatSolver(2)
        s.add_clause([1])
        s.add_clause([2])
        s.add_clause([-1, -2])
        assert not s.solve()

    def test_counters_populated_on_search(self):
        # xor chain forces real decisions and conflicts
        rng = random.Random(0)
        s = SatSolver(12)
        for _ in range(40):
            clause = [rng.choice([-1, 1]) * v
                      for v in rng.sample(range(1, 13), 3)]
            s.add_clause(clause)
        s.solve()
        assert s.propagations > 0
        assert s.decisions + s.conflicts > 0

    def test_differential_vs_brute_force(self):
        rng = random.Random(42)
        for trial in range(150):
            nv = rng.randint(1, 7)
            clauses = [
                [rng.choice([-1, 1]) * rng.randint(1, nv)
                 for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 25))
            ]
            s = SatSolver(nv)
            for c in clauses:
                s.add_clause(c)
            got = s.solve()
            want = any(
                all(any((l > 0) == bool((m >> (abs(l) - 1)) & 1) for l in c)
                    for c in clauses)
                for m in range(1 << nv)
            )
            assert got == want, (trial, clauses)
            if got:
                model = s.model()
                assert all(
                    any((l > 0) == model.get(abs(l), False) for l in c)
                    for c in clauses
                )


def _mutate(netlist: Netlist, rng: random.Random) -> Netlist:
    """Swap one AND/OR gate type — a single-gate logic bug."""
    out = netlist.copy()
    cells = [c for c in out.cells.values() if c.type in ("AND", "OR")]
    cell = cells[rng.randrange(len(cells))]
    out.cells[cell.name] = Cell(
        cell.name, "OR" if cell.type == "AND" else "AND",
        cell.inputs, cell.output, cell.params,
    )
    return out


class TestVerdictsMatchTaut:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_miters(self, seed):
        """taut / sat / fraig agree on random equivalent + mutated pairs."""
        rng = random.Random(seed)
        base = bitblast(random_sequential_circuit(3, 4, 20, seed=seed)).netlist
        rebuilt = bitblast(base, name_suffix="_strash").netlist
        pairs = [(base, rebuilt, "equivalent")]
        mutated = _mutate(base, rng)
        pairs.append((base, mutated, None))  # verdict decided by taut
        for a, b, expect in pairs:
            r_taut = tautology.combinational_equivalent(a, b)
            r_sat = check_equivalence_sat(a, b)
            r_fraig = check_equivalence_fraig(a, b)
            assert r_sat.status == r_taut.status
            assert r_fraig.status == r_taut.status
            if expect is not None:
                assert r_taut.status == expect

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_table1_cells(self, n):
        """ISSUE acceptance: identical verdicts on Table I cells."""
        w = table1_workload(n)
        for a, b in ((w.original, w.retimed), (w.original, w.original)):
            r_taut = tautology.combinational_equivalent(a, b)
            r_sat = run_checker("sat", a, b, time_budget=30.0)
            r_fraig = run_checker("fraig", a, b, time_budget=30.0)
            assert r_sat.status == r_taut.status, (n, r_taut.detail)
            assert r_fraig.status == r_taut.status, (n, r_taut.detail)

    def test_table2_cells(self):
        """ISSUE acceptance: identical verdicts on (scaled) Table II cells."""
        for w in table2_workloads(scale=0.05):
            for a, b in ((w.original, w.retimed), (w.original, w.original)):
                r_taut = tautology.combinational_equivalent(a, b)
                r_sat = run_checker("sat", a, b, time_budget=30.0)
                r_fraig = run_checker("fraig", a, b, time_budget=30.0)
                assert r_sat.status == r_taut.status, (w.name, r_taut.detail)
                assert r_fraig.status == r_taut.status, (w.name, r_taut.detail)

    def test_structurally_distinct_equivalent_pair(self):
        """Associativity-rewritten adders: equivalence needs real SAT search."""

        def adder(name: str, left: bool) -> Netlist:
            nl = Netlist(name)
            for inp in ("a", "b", "c"):
                nl.add_input(inp, 4)
            if left:
                nl.add_cell("s1", "ADD", ["a", "b"], "t")
                nl.add_cell("s2", "ADD", ["t", "c"], "y")
            else:
                nl.add_cell("s1", "ADD", ["b", "c"], "t")
                nl.add_cell("s2", "ADD", ["a", "t"], "y")
            nl.mark_output("y")
            return nl

        a, b = adder("l", True), adder("r", False)
        r_sat = check_equivalence_sat(a, b)
        r_fraig = check_equivalence_fraig(a, b)
        assert r_sat.status == r_fraig.status == "equivalent"
        assert r_sat.stats["conflicts"] > 0        # not structurally trivial
        assert r_fraig.stats["sat_calls"] > 0

    def test_counterexample_is_concrete(self):
        base = bitblast(figure2(2)).netlist
        mutated = _mutate(base, random.Random(1))
        result = check_equivalence_sat(base, mutated)
        assert result.status == "not_equivalent"
        assert result.counterexample is not None
        assert all(isinstance(v, bool) for v in result.counterexample.values())


class TestStats:
    def test_sat_stats_keys(self):
        w = table1_workload(2)
        result = run_checker("sat", w.original, w.original)
        for key in ("aig_nodes", "wall_seconds"):
            assert key in result.stats
        base = bitblast(figure2(2)).netlist
        rebuilt = bitblast(base, name_suffix="_s").netlist
        result = check_equivalence_sat(base, rebuilt)
        for key in ("aig_nodes", "decisions", "propagations", "conflicts"):
            assert key in result.stats

    def test_fraig_stats_keys(self):
        base = bitblast(figure2(2)).netlist
        mutated = _mutate(base, random.Random(5))
        result = check_equivalence_fraig(base, mutated)
        for key in ("aig_nodes", "decisions", "propagations", "conflicts",
                    "sat_calls", "merges"):
            assert key in result.stats


class TestTautologyAigPath:
    def test_agrees_with_bdd_path(self):
        taut_nl = Netlist("t")
        taut_nl.add_input("x")
        taut_nl.add_cell("n", "NOT", ["x"], "nx")
        taut_nl.add_cell("o", "OR", ["x", "nx"], "y")
        taut_nl.add_output("y")
        assert is_tautology_sat(taut_nl) is True
        assert tautology.is_tautology(taut_nl) is True
        assert tautology.is_tautology_by_sat(taut_nl) is True

        non = Netlist("nt")
        non.add_input("x")
        non.add_cell("b", "BUF", ["x"], "y")
        non.add_output("y")
        assert is_tautology_sat(non) is False
        assert tautology.is_tautology(non) is False

    def test_sequential_rejected(self):
        c = bitblast(figure2(2)).netlist
        with pytest.raises(ValueError):
            is_tautology_sat(c)


class TestDeepCnf:
    def test_deep_cone_at_default_recursion_limit(self):
        """>2000-node AIG cones Tseitin-encode and solve iteratively."""
        limit = sys.getrecursionlimit()
        nl = Netlist("deep")
        nl.add_input("x")
        nl.add_input("y")
        prev = "x"
        for i in range(2100):
            nl.add_cell(f"g{i}", "XOR", [prev, "y"], f"n{i}")
            prev = f"n{i}"
        nl.add_output(prev)
        # even levels collapse back to x, odd to x^y: the chain is deep but
        # the output equals a shallow circuit — a real equivalence query
        ref = Netlist("ref")
        ref.add_input("x")
        ref.add_input("y")
        ref.add_cell("b", "BUF", ["x"], prev)
        ref.add_output(prev)
        result = check_equivalence_sat(nl, ref)
        assert result.status == "equivalent"
        assert sys.getrecursionlimit() == limit
