"""Tests for intra-cell sharding at the backend layer.

The :class:`~repro.verification.registry.ShardableCheck` protocol and the
three initial implementations: FRAIG candidate-class ranges, tautology
(BDD) input-prefix cofactoring, and taut-rw vector-range enumeration.
The governing invariant everywhere: the shard-merged verdict and the
declared additive counters equal the unsharded run's, for every shard
count.
"""

import pytest

from repro.eval.runner import CellSpec, merge_shards, run_spec
from repro.eval.scenarios import build_scenario
from repro.verification.registry import (
    get_shardable,
    register_shardable,
    run_checker,
    shardable_methods,
    unregister_checker,
)

SHARDED = ("fraig", "taut", "taut-rw")


@pytest.fixture(scope="module")
def strash():
    return build_scenario("strash", widths=[3])[0]


@pytest.fixture(scope="module")
def counter():
    return build_scenario("strash", widths=[3])[1]


# ---------------------------------------------------------------------------
# The registry protocol
# ---------------------------------------------------------------------------

class TestShardableRegistry:
    def test_initial_backends_are_registered(self):
        assert set(SHARDED) <= set(shardable_methods())

    def test_unshardable_method_returns_none(self):
        assert get_shardable("smv") is None

    def test_plan_bounds_the_effective_count(self, strash):
        for method in SHARDED:
            shardable = get_shardable(method)
            effective = shardable.plan(strash.original, strash.retimed, 4)
            assert 1 <= effective <= 64
            assert shardable.plan(strash.original, strash.retimed, 1) == 1

    def test_prefix_plans_settle_on_powers_of_two(self, strash):
        for method in ("taut", "taut-rw"):
            plan = get_shardable(method).plan
            for requested in (2, 3, 4, 5, 8):
                effective = plan(strash.original, strash.retimed, requested)
                assert effective & (effective - 1) == 0  # a power of two

    def test_register_shardable_requires_a_registered_checker(self):
        with pytest.raises(KeyError):
            register_shardable("nosuch", lambda o, r, n: n,
                              sum_stats=frozenset())

    def test_register_shardable_requires_shard_in_accepts(self):
        from repro.verification.common import VerificationResult
        from repro.verification.registry import register_checker

        register_checker(
            "shardless", lambda o, r: VerificationResult(
                method="shardless", status="equivalent", seconds=0.0),
            accepts=(), replace=True)
        try:
            with pytest.raises(ValueError):
                register_shardable("shardless", lambda o, r, n: n,
                                  sum_stats=frozenset())
        finally:
            unregister_checker("shardless")


# ---------------------------------------------------------------------------
# Backend-level shard correctness
# ---------------------------------------------------------------------------

class TestBackendShards:
    @pytest.mark.parametrize("method", SHARDED)
    def test_equivalent_pair_every_shard_agrees(self, counter, method):
        base = run_checker(method, counter.original, counter.retimed,
                           time_budget=60.0, node_budget=500_000)
        assert base.status == "equivalent"
        for k in range(4):
            part = run_checker(method, counter.original, counter.retimed,
                               time_budget=60.0, node_budget=500_000,
                               shard=(k, 4))
            assert part.status == "equivalent", f"{method} shard {k}"

    def test_taut_rw_vector_counts_sum_exactly(self, counter):
        base = run_checker("taut-rw", counter.original, counter.retimed,
                           time_budget=60.0)
        sharded = sum(
            run_checker("taut-rw", counter.original, counter.retimed,
                        time_budget=60.0, shard=(k, 4)).stats["vectors"]
            for k in range(4)
        )
        assert sharded == base.stats["vectors"]

    def test_invalid_shard_ranges_are_rejected(self, strash):
        for bad in ((4, 4), (-1, 4), (0, 0)):
            with pytest.raises(ValueError):
                run_checker("fraig", strash.original, strash.retimed,
                            time_budget=60.0, shard=bad)
        with pytest.raises(ValueError):
            # taut requires a power-of-two shard count
            run_checker("taut", strash.original, strash.retimed,
                        time_budget=60.0, shard=(0, 3))

    def test_degenerate_single_shard_is_the_unsharded_run(self, counter):
        base = run_checker("taut-rw", counter.original, counter.retimed,
                           time_budget=60.0)
        single = run_checker("taut-rw", counter.original, counter.retimed,
                             time_budget=60.0, shard=(0, 1))
        assert single.status == base.status
        assert single.stats["vectors"] == base.stats["vectors"]


# ---------------------------------------------------------------------------
# The merged cell equals the unsharded cell
# ---------------------------------------------------------------------------

class TestShardedCells:
    @pytest.mark.parametrize("method", SHARDED)
    def test_merged_verdict_matches_unsharded(self, counter, method):
        base = run_spec(CellSpec(counter, method, time_budget=60.0))
        merged = run_spec(CellSpec(counter, method, time_budget=60.0,
                                   shards=4))
        assert merged.verdict == base.verdict == "equivalent"
        assert merged.stats["shards"] >= 2.0

    def test_merged_additive_counters_sum(self, counter):
        base = run_spec(CellSpec(counter, "taut-rw", time_budget=60.0))
        merged = run_spec(CellSpec(counter, "taut-rw", time_budget=60.0,
                                   shards=4))
        assert merged.stats["vectors"] == base.stats["vectors"]

    def test_refuting_shard_carries_a_certified_counterexample(self):
        from repro.eval.fuzz import build_cell, make_specs

        # a fault-injected pair: ground truth not_equivalent
        spec = next(s for s in make_specs(6, seed=3)
                    if s.flavour == "fault")
        cell = build_cell(spec)
        merged = run_spec(CellSpec(cell.workload, "fraig",
                                   time_budget=60.0, shards=4))
        assert merged.verdict == "not_equivalent"
        assert merged.counterexample is not None
        assert merged.stats.get("cex_certified") == 1.0

    def test_unshardable_method_ignores_the_shard_request(self, strash):
        base = run_spec(CellSpec(strash, "smv", time_budget=60.0))
        same = run_spec(CellSpec(strash, "smv", time_budget=60.0, shards=4))
        assert same.verdict == base.verdict
        assert "shards" not in same.stats
