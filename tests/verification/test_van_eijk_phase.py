"""Regression: van Eijk candidate harvesting must track signature phase.

The AIG maps a net and its complement onto one node reached through an
inverted edge, so a naive port of the signature harvesting to the shared
IR would bucket complement-equivalent nets (x vs ~x) and constant nets
(constant-0 vs constant-1 — the two phases of the constant node) into one
candidate class.  `van_eijk._simulation_signatures` keys buckets by the
``(canonical_word, phase)`` pair instead, with the phase explicit; these
tests pin that behaviour and the resulting verdicts.
"""

from repro.circuits.netlist import Netlist
from repro.verification import van_eijk
from repro.verification.van_eijk import check_equivalence


def _phase_probe() -> Netlist:
    """A gate-level circuit with a net, its complement and both constants."""
    nl = Netlist("phase_probe")
    nl.add_input("x")
    nl.add_net("r_out")
    nl.add_cell("c0", "CONST", [], "zero", params={"value": 0, "width": 1})
    nl.add_cell("c1", "CONST", [], "one", params={"value": 1, "width": 1})
    nl.add_cell("inv", "NOT", ["x"], "nx")
    nl.add_cell("buf", "BUF", ["x"], "x2")
    nl.add_cell("mix", "XOR", ["x", "r_out"], "d")
    nl.add_register("r", "d", "r_out")
    nl.add_output("x2")
    return nl


class TestPhaseExplicitSignatures:
    def test_complement_nets_never_share_a_key(self):
        sigs = van_eijk._simulation_signatures(_phase_probe(), cycles=48, seed=0)
        # x and ~x share the canonical word but differ in the phase bit
        canon_x, phase_x = sigs["x"]
        canon_nx, phase_nx = sigs["nx"]
        assert canon_x == canon_nx
        assert phase_x != phase_nx
        assert sigs["x"] != sigs["nx"]

    def test_constant_nets_never_share_a_key(self):
        sigs = van_eijk._simulation_signatures(_phase_probe(), cycles=48, seed=0)
        canon0, phase0 = sigs["zero"]
        canon1, phase1 = sigs["one"]
        assert canon0 == canon1 == 0  # one constant node, two phases
        assert (phase0, phase1) == (0, 1)
        assert sigs["zero"] != sigs["one"]

    def test_value_equal_nets_share_a_key(self):
        sigs = van_eijk._simulation_signatures(_phase_probe(), cycles=48, seed=0)
        assert sigs["x"] == sigs["x2"]  # genuine candidates still bucket

    def test_verdict_on_identical_circuits_unaffected(self):
        a, b = _phase_probe(), _phase_probe()
        result = check_equivalence(a, b, simulation_cycles=32)
        assert result.status == "equivalent"
        assert result.stats["classes"] >= 1
